// Package geostore implements the geospatial RDF store of Challenge C3:
// Strabon re-engineered for scale. It layers geometry awareness over
// internal/rdf: WKT literals are parsed once at load time, indexed in an
// R-tree, and stSPARQL spatial filters are answered by filter-and-refine
// over the index instead of per-row WKT parsing.
//
// Three execution modes reproduce the E1/E2 experiment axes:
//
//   - ModeNaive mirrors the 2012-era Strabon evaluation strategy the paper
//     cites as insufficient: full scan of candidate bindings with exact
//     geometry tests (including WKT parsing) per row.
//   - ModeIndexed is the re-engineered single-node store: pre-parsed
//     geometries, R-tree pruning, exact refinement only on survivors.
//   - Partitioned (see PartitionedStore) adds scale-out: features are
//     hash-partitioned across k indexed stores queried in parallel.
package geostore

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/telemetry"
)

// Mode selects the execution strategy of a single-node store.
type Mode int

const (
	// ModeIndexed uses the R-tree filter-and-refine pipeline.
	ModeIndexed Mode = iota
	// ModeNaive evaluates spatial filters row-at-a-time with WKT parsing,
	// the "Strabon 2012" baseline of experiments E1/E2.
	ModeNaive
)

func (m Mode) String() string {
	switch m {
	case ModeIndexed:
		return "indexed"
	case ModeNaive:
		return "naive"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Feature is a geospatial entity: the unit of loading for the experiment
// workloads and the applications (fields, ice floes, icebergs, products).
type Feature struct {
	// IRI identifies the feature.
	IRI string
	// Class is the rdf:type IRI ("" for untyped features).
	Class string
	// Geometry is the feature geometry.
	Geometry geom.Geometry
	// Props holds additional predicate IRI -> object term attributes.
	Props map[string]rdf.Term
}

// Store is a single-node geospatial RDF store.
type Store struct {
	rdfStore *rdf.Store
	mode     Mode

	// plans caches compiled slot-based query plans keyed on canonical
	// query text, invalidated by store version.
	plans *planCache

	// joinProbes counts R-tree probes issued by index spatial joins
	// (exposed as sparql_spatial_join_probes_total).
	joinProbes atomic.Uint64

	// parallel is the morsel-driven execution degree (< 2 = sequential);
	// gate bounds executor goroutines server-wide; execMorsels counts
	// dispatched morsels (exposed as sparql_exec_morsels_total). Set via
	// SetParallel before serving.
	parallel    int
	gate        rdf.WorkerGate
	execMorsels atomic.Uint64

	// logger, when non-nil, records execution-path events (query
	// cancellation) with the request ID carried by the query context, so
	// store-level lines correlate with the endpoint's access log.
	logger *slog.Logger

	mu sync.RWMutex
	// geoms maps the dictionary ID of a WKT literal to its parsed
	// geometry; parsed once at insert.
	geoms map[rdf.ID]geom.Geometry
	// rtree indexes geometry bounds by WKT literal dictionary ID.
	rtree *geom.RTree
	dirty bool
}

// New returns an empty store in the given mode.
func New(mode Mode) *Store {
	return &Store{
		rdfStore: rdf.NewStore(),
		mode:     mode,
		plans:    newPlanCache(),
		geoms:    make(map[rdf.ID]geom.Geometry),
		rtree:    geom.NewRTree(),
	}
}

// Mode returns the store's execution mode.
func (s *Store) Mode() Mode { return s.mode }

// SetParallel enables morsel-driven parallel query execution at the
// given degree (< 2 disables it). gate, when non-nil, bounds executor
// goroutines across concurrent queries (see rdf.WorkerGate); a query's
// first worker never needs a slot, so execution degrades gracefully
// toward sequential under load. Call before serving: the degree is a
// store-wide execution property, so cached plans (keyed on query text
// and store version) remain valid.
func (s *Store) SetParallel(degree int, gate rdf.WorkerGate) {
	if degree < 1 {
		degree = 1
	}
	s.parallel = degree
	s.gate = gate
}

// ExecStats returns the number of parallel executor morsels dispatched
// (exposed by /metrics as sparql_exec_morsels_total).
func (s *Store) ExecStats() (morsels uint64) { return s.execMorsels.Load() }

// SetLogger attaches a structured logger for execution-path events
// (currently query cancellations, tagged with the context's request ID).
// nil (the default) disables store-level logging.
func (s *Store) SetLogger(l *slog.Logger) { s.logger = l }

// RDF exposes the underlying triple store.
func (s *Store) RDF() *rdf.Store { return s.rdfStore }

// Len returns the number of triples.
func (s *Store) Len() int { return s.rdfStore.Len() }

// Version returns the store's monotonic mutation counter (see
// rdf.Store.Version); query-result caches key on it for invalidation.
func (s *Store) Version() uint64 { return s.rdfStore.Version() }

// JournalErr surfaces the first durability-journal failure, if any (see
// rdf.Store.JournalErr). Serving layers report it as a server fault.
func (s *Store) JournalErr() error { return s.rdfStore.JournalErr() }

// NumGeometries returns the number of distinct indexed geometries.
func (s *Store) NumGeometries() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.geoms)
}

// Add inserts a triple, registering the object if it is a geometry
// literal. Invalid WKT in a geometry literal is an error.
func (s *Store) Add(sub, pred, obj rdf.Term) error {
	if obj.IsGeometry() {
		id := s.rdfStore.Dict().Encode(obj)
		s.mu.Lock()
		if _, ok := s.geoms[id]; !ok {
			g, err := geom.ParseWKT(obj.Value)
			if err != nil {
				s.mu.Unlock()
				return fmt.Errorf("geostore: %w", err)
			}
			s.geoms[id] = g
			s.dirty = true
		}
		s.mu.Unlock()
	}
	s.rdfStore.Add(sub, pred, obj)
	return nil
}

// RegisterGeometry associates a pre-parsed geometry with a WKT literal
// term, so a subsequent Add of that literal skips WKT parsing. Sharded
// bulk loaders (internal/storage.BulkLoad) parse WKT in parallel workers
// and register here from the single writer.
func (s *Store) RegisterGeometry(obj rdf.Term, g geom.Geometry) {
	id := s.rdfStore.Dict().Encode(obj)
	s.mu.Lock()
	if _, ok := s.geoms[id]; !ok {
		s.geoms[id] = g
		s.dirty = true
	}
	s.mu.Unlock()
}

// RestoreGeometries scans the dictionary for geo:wktLiteral terms and
// (re-)parses any that are not yet registered, sharding the WKT parsing
// across CPUs. Call it after snapshot/WAL recovery populated the
// underlying RDF store directly.
func (s *Store) RestoreGeometries() error {
	type pending struct {
		id rdf.ID
		t  rdf.Term
	}
	var todo []pending
	s.mu.RLock()
	s.rdfStore.Dict().Range(func(id rdf.ID, t rdf.Term) bool {
		if t.IsGeometry() {
			if _, ok := s.geoms[id]; !ok {
				todo = append(todo, pending{id, t})
			}
		}
		return true
	})
	s.mu.RUnlock()
	if len(todo) == 0 {
		return nil
	}

	workers := runtime.NumCPU()
	if workers > len(todo) {
		workers = len(todo)
	}
	parsed := make([]geom.Geometry, len(todo))
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(todo); i += workers {
				g, err := geom.ParseWKT(todo[i].t.Value)
				if err != nil {
					errs[w] = fmt.Errorf("geostore: restore %q: %w", todo[i].t.Value, err)
					return
				}
				parsed[i] = g
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	s.mu.Lock()
	for i, p := range todo {
		if _, ok := s.geoms[p.id]; !ok {
			s.geoms[p.id] = parsed[i]
			s.dirty = true
		}
	}
	s.mu.Unlock()
	return nil
}

// LoadNTriples streams N-Triples into the store, registering geometry
// literals and sealing a journal batch every loadBatch triples, so an
// attached WAL sees bounded batches instead of one giant record. It
// returns the number of triples read; on error, triples before the
// offending line remain loaded (and journaled).
func (s *Store) LoadNTriples(r io.Reader) (int, error) {
	const loadBatch = 4096
	n := 0
	_, err := rdf.ScanNTriples(r, func(t rdf.Triple) error {
		if err := s.Add(t.S, t.P, t.O); err != nil {
			return err
		}
		n++
		if n%loadBatch == 0 {
			return s.rdfStore.CommitJournal()
		}
		return nil
	})
	if cerr := s.rdfStore.CommitJournal(); err == nil {
		err = cerr
	}
	return n, err
}

// AddFeature inserts the standard GeoSPARQL triple shape for a feature:
//
//	<iri> rdf:type <class> .
//	<iri> geo:hasGeometry <iri/geom> .
//	<iri/geom> geo:asWKT "..."^^geo:wktLiteral .
//	<iri> <prop> <value> .   (for each property)
func (s *Store) AddFeature(f Feature) error {
	subj := rdf.NewIRI(f.IRI)
	if f.Class != "" {
		s.rdfStore.Add(subj, rdf.NewIRI(rdf.RDFType), rdf.NewIRI(f.Class))
	}
	geomNode := rdf.NewIRI(f.IRI + "/geom")
	s.rdfStore.Add(subj, rdf.NewIRI(rdf.GeoHasGeometry), geomNode)
	if err := s.Add(geomNode, rdf.NewIRI(rdf.GeoAsWKT), rdf.NewWKTLiteral(f.Geometry.WKT())); err != nil {
		return err
	}
	for p, o := range f.Props {
		s.rdfStore.Add(subj, rdf.NewIRI(p), o)
	}
	return nil
}

// Build bulk-loads the R-tree from the registered geometries. Queries call
// it implicitly when the index is stale, but bulk loaders should call it
// once after ingest for deterministic timing.
func (s *Store) Build() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buildLocked()
}

func (s *Store) buildLocked() {
	if !s.dirty {
		return
	}
	bounds := make([]geom.Rect, 0, len(s.geoms))
	data := make([]int64, 0, len(s.geoms))
	for id, g := range s.geoms {
		bounds = append(bounds, g.Bounds())
		data = append(data, int64(id))
	}
	s.rtree = geom.NewRTree()
	s.rtree.BulkLoad(bounds, data)
	s.dirty = false
}

// QueryString parses and evaluates an stSPARQL query.
func (s *Store) QueryString(qs string) (*sparql.Results, error) {
	q, err := sparql.Parse(qs)
	if err != nil {
		return nil, err
	}
	return s.Query(q)
}

// Query evaluates a parsed query according to the store mode.
func (s *Store) Query(q *sparql.Query) (*sparql.Results, error) {
	return s.QueryContext(context.Background(), q)
}

// QueryContext is Query with cancellation: when the store runs the
// morsel-driven parallel executor, ctx is polled at every morsel
// dispatch (and inside exploding morsels), so a timed-out or abandoned
// query stops all its workers promptly and returns ctx.Err(). The
// sequential paths are not preemptible and ignore ctx.
func (s *Store) QueryContext(ctx context.Context, q *sparql.Query) (*sparql.Results, error) {
	if s.mode == ModeNaive {
		// The 2012-era baseline: map-based nested-loop evaluation with
		// per-row WKT parsing, kept as the E1/E2 contrast and as the
		// reference oracle for the slot executor.
		return sparql.EvalLegacy(s.rdfStore, q)
	}
	res, _, err := s.queryIndexed(ctx, q, false)
	return res, err
}

// QueryAnalyze is QueryContext with EXPLAIN ANALYZE profiling: the query
// runs with executor stats collection on and the per-step profile is
// returned alongside the results. Naive mode's legacy evaluator is not
// instrumented; it returns a timing-only profile with a note.
func (s *Store) QueryAnalyze(ctx context.Context, q *sparql.Query) (*sparql.Results, *sparql.Profile, error) {
	if s.mode == ModeNaive {
		start := time.Now()
		res, err := sparql.EvalLegacy(s.rdfStore, q)
		if err != nil {
			return nil, nil, err
		}
		prof := &sparql.Profile{
			Query:       q.Canonical(),
			Fingerprint: q.Fingerprint(),
			ElapsedNs:   int64(time.Since(start)),
			Rows:        res.Len(),
			Note:        "naive mode: legacy map-based evaluator (per-step stats not collected)",
		}
		return res, prof, nil
	}
	return s.queryIndexed(ctx, q, true)
}

// logCanceled records a query cancellation with the request ID from ctx.
func (s *Store) logCanceled(ctx context.Context, q *sparql.Query) {
	if s.logger == nil {
		return
	}
	s.logger.LogAttrs(ctx, slog.LevelWarn, "query canceled",
		slog.String("request_id", sparql.RequestIDFrom(ctx)),
		slog.String("fingerprint", q.Fingerprint()))
}

// queryIndexed is the filter-and-refine pipeline of the re-engineered
// store, running entirely on the compiled slot executor: the most
// selective accelerable spatial filter seeds the pipeline with sorted
// R-tree survivors (enabling merge joins against the seed stream),
// remaining spatial filters refine against pre-parsed geometries inside
// the pipeline at the step that binds their variable, and non-spatial
// filters are pushed down by the planner. Compiled plans are cached by
// canonical query text and store version. With SetParallel(>= 2) the
// plan runs on the morsel-driven parallel executor — spatial refiners
// and probe steps included — with ctx cancellation threaded into morsel
// dispatch.
func (s *Store) queryIndexed(ctx context.Context, q *sparql.Query, analyze bool) (*sparql.Results, *sparql.Profile, error) {
	entry, err := s.cachedPlan(q)
	if err != nil {
		return nil, nil, err
	}
	if len(entry.spatial) > 0 || len(entry.joins) > 0 {
		// Both the seed scan and the spatial-join probe steps read the
		// R-tree during execution.
		s.mu.Lock()
		s.buildLocked()
		s.mu.Unlock()
	}
	var seeds []rdf.Row
	if len(entry.spatial) > 0 {
		seedIDs := s.seedIDs(entry.spatial[0])
		if len(seedIDs) == 0 {
			var prof *sparql.Profile
			if analyze {
				prof = &sparql.Profile{
					Query:       q.Canonical(),
					Fingerprint: q.Fingerprint(),
					Note:        "spatial seed produced no candidates; pipeline not run",
				}
			}
			return &sparql.Results{Vars: q.Vars}, prof, nil
		}
		seeds = entry.plan.SeedRows(seedIDs)
	}
	if s.parallel >= 2 {
		px := sparql.ParallelExec{
			Degree:  s.parallel,
			Cancel:  func() bool { return ctx.Err() != nil },
			Gate:    s.gate,
			Morsels: &s.execMorsels,
		}
		var (
			res  *sparql.Results
			prof *sparql.Profile
		)
		if analyze {
			res, prof, err = entry.plan.ExecuteParallelAnalyzed(seeds, px)
		} else {
			res, err = entry.plan.ExecuteParallelSeeded(seeds, px)
		}
		if errors.Is(err, sparql.ErrCanceled) {
			s.logCanceled(ctx, q)
			return nil, nil, ctx.Err()
		}
		return res, prof, err
	}
	if analyze {
		return entry.plan.ExecuteAnalyzed(seeds)
	}
	res, err := entry.plan.ExecuteSeeded(seeds)
	return res, nil, err
}

// cachedPlan returns the compiled plan for q at the current store
// version, compiling and caching on miss.
func (s *Store) cachedPlan(q *sparql.Query) (*planEntry, error) {
	key := q.Canonical()
	version := s.Version()
	if e, ok := s.plans.get(key, version); ok {
		return e, nil
	}
	spatial := sparql.ExtractSpatialFilters(q)
	joins := sparql.ExtractSpatialJoins(q)
	// Parallel only annotates Explain (workers=N and the split); it does
	// not change compilation, so the cache key stays (query, version).
	opt := sparql.PlanOpts{Parallel: s.parallel}
	if len(spatial) > 0 {
		// Seed from the first spatial filter; the others become pushed
		// refiners. Filters fully enforced by index+refinement are
		// skipped in the generic pass.
		opt.SeedVar = spatial[0].Var
		opt.SeedsSorted = true
		opt.SkipFilters = make(map[int]bool)
		if spatial[0].Exclusive {
			opt.SkipFilters[spatial[0].FilterIndex] = true
		}
		for _, sf := range spatial[1:] {
			if sf.Exclusive {
				opt.SkipFilters[sf.FilterIndex] = true
			}
			sf := sf
			opt.Refiners = append(opt.Refiners, sparql.Refiner{
				Var:   sf.Var,
				Label: "spatial refine " + sf.Fn + "(?" + sf.Var + ", ...)",
				Pred:  func(id rdf.ID) bool { return s.refine(sf, id) },
			})
		}
	}
	// Variable-variable spatial predicates become index join probes:
	// once the pipeline binds one side's geometry, the R-tree generates
	// exact candidates for the other side instead of the cartesian scan
	// the generic filter would force. Probes refine exactly, so an
	// exclusive join filter is fully enforced and skipped generically.
	for _, sj := range joins {
		if sj.Exclusive {
			if opt.SkipFilters == nil {
				opt.SkipFilters = make(map[int]bool)
			}
			opt.SkipFilters[sj.FilterIndex] = true
		}
		sj := sj
		opt.Probes = append(opt.Probes, sparql.JoinProbe{
			VarA: sj.VarA, VarB: sj.VarB,
			Candidates: func(bound rdf.ID, aBound bool, yield func(rdf.ID) bool) {
				s.probeJoin(sj, bound, aBound, yield)
			},
			Check: func(a, b rdf.ID) bool { return s.checkJoin(sj, a, b) },
			Label: "spatial index join " + sj.String() + " (R-tree probe + exact refine)",
		})
	}
	plan, err := sparql.CompilePlan(s.rdfStore, q, opt)
	if err != nil {
		return nil, err
	}
	e := &planEntry{key: key, version: version, plan: plan, spatial: spatial, joins: joins}
	s.plans.put(e)
	return e, nil
}

// probeJoin answers one index spatial-join probe: search the R-tree with
// the bound geometry's join window (its MBR, distance-expanded for
// distance joins) and refine candidates exactly, honouring the
// predicate's argument order. Yielded IDs therefore satisfy the join
// predicate — the executor does not re-check.
func (s *Store) probeJoin(sj sparql.SpatialJoin, bound rdf.ID, aBound bool, yield func(rdf.ID) bool) {
	s.joinProbes.Add(1)
	rel := sj.Relation()
	s.mu.RLock()
	defer s.mu.RUnlock()
	g, ok := s.geoms[bound]
	if !ok {
		// Not a registered geometry: the predicate errors on this row in
		// SPARQL semantics, so it contributes no candidates.
		return
	}
	s.rtree.Search(geom.JoinWindow(rel, g, sj.Distance), func(_ geom.Rect, data int64) bool {
		id := rdf.ID(data)
		cand, ok := s.geoms[id]
		if !ok {
			return true
		}
		var holds bool
		if aBound {
			holds = geom.JoinHolds(rel, g, cand, sj.Distance)
		} else {
			holds = geom.JoinHolds(rel, cand, g, sj.Distance)
		}
		if holds {
			return yield(id)
		}
		return true
	})
}

// checkJoin tests the join predicate between two already-bound geometry
// IDs (the planner's fallback when pattern steps bound both sides before
// a probe step could run).
func (s *Store) checkJoin(sj sparql.SpatialJoin, a, b rdf.ID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ga, ok := s.geoms[a]
	if !ok {
		return false
	}
	gb, ok := s.geoms[b]
	if !ok {
		return false
	}
	return geom.JoinHolds(sj.Relation(), ga, gb, sj.Distance)
}

// SpatialJoinStats returns the number of index spatial-join probes the
// store has answered (exposed by /metrics as
// sparql_spatial_join_probes_total).
func (s *Store) SpatialJoinStats() (probes uint64) { return s.joinProbes.Load() }

// PlanCacheStats returns the plan cache hit/miss counters (exposed by
// the endpoint's /metrics).
func (s *Store) PlanCacheStats() (hits, misses uint64) { return s.plans.stats() }

// Explain compiles (or fetches) the plan for q and renders the chosen
// join order, access paths and pushed filters, followed by one strategy
// line per spatial predicate (index spatial join vs cartesian+filter) so
// an unaccelerable predicate is never silent.
func (s *Store) Explain(q *sparql.Query) (string, error) {
	if s.mode == ModeNaive {
		text := "naive mode: legacy map-based nested-loop evaluator (no compiled plan)\n" +
			"spatial strategy: every spatial predicate evaluated per row after the full join\n" +
			"(cartesian scan + exact filter for variable-variable predicates)\n"
		return text, nil
	}
	entry, err := s.cachedPlan(q)
	if err != nil {
		return "", err
	}
	text := entry.plan.Explain()
	if rep := sparql.SpatialReport(q); len(rep) > 0 {
		text += strings.Join(rep, "\n") + "\n"
	}
	return text, nil
}

// seedIDs runs the R-tree window query for the filter and refines
// survivors exactly, returning the passing geometry literal IDs.
func (s *Store) seedIDs(sf sparql.SpatialFilter) []rdf.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var ids []rdf.ID
	s.rtree.Search(sf.Window, func(_ geom.Rect, data int64) bool {
		id := rdf.ID(data)
		if s.refineLocked(sf, id) {
			ids = append(ids, id)
		}
		return true
	})
	return ids
}

// refine tests the exact spatial predicate between the stored geometry and
// the filter geometry.
func (s *Store) refine(sf sparql.SpatialFilter, id rdf.ID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.refineLocked(sf, id)
}

func (s *Store) refineLocked(sf sparql.SpatialFilter, id rdf.ID) bool {
	g, ok := s.geoms[id]
	if !ok {
		return false
	}
	switch sf.Fn {
	case sparql.FnSfIntersects:
		return geom.Intersects(g, sf.Geometry)
	case sparql.FnSfWithin:
		return geom.Within(g, sf.Geometry)
	case sparql.FnSfContains:
		return geom.Contains(g, sf.Geometry)
	default:
		return false
	}
}

// PartitionedStore is the scale-out variant: features are hash-partitioned
// across k indexed stores and queries fan out in parallel. Because a
// feature's triples are co-located in one partition, BGP solutions never
// span partitions, so merging is concatenation — except for
// variable-variable spatial joins, whose two sides usually live in
// different partitions; those are evaluated by broadcasting the probe
// side across partitions (see partjoin.go).
type PartitionedStore struct {
	parts []*Store
	// joinProbes counts the global pairing probes of broadcast spatial
	// joins (partition-local probes are counted by each partition).
	joinProbes atomic.Uint64

	// parallel/gate mirror Store.SetParallel for the partitions and the
	// merged fallback store; logger mirrors Store.SetLogger.
	parallel int
	gate     rdf.WorkerGate
	logger   *slog.Logger

	// merged caches the transient single-node fallback store for
	// non-decomposable spatial-join queries, keyed on the summed
	// partition versions (see queryMerged).
	mergedMu      sync.Mutex
	merged        *Store
	mergedVersion uint64
}

// NewPartitioned returns a store with k indexed partitions.
func NewPartitioned(k int) *PartitionedStore {
	if k < 1 {
		k = 1
	}
	ps := &PartitionedStore{parts: make([]*Store, k)}
	for i := range ps.parts {
		ps.parts[i] = New(ModeIndexed)
	}
	return ps
}

// NumPartitions returns the partition count.
func (ps *PartitionedStore) NumPartitions() int { return len(ps.parts) }

// SetParallel enables morsel-driven parallel execution inside every
// partition (and the merged fallback store). Partitions already fan out
// across goroutines, so the gate matters even more here: it keeps
// partitions × morsel-workers from oversubscribing the host.
func (ps *PartitionedStore) SetParallel(degree int, gate rdf.WorkerGate) {
	ps.parallel, ps.gate = degree, gate
	for _, p := range ps.parts {
		p.SetParallel(degree, gate)
	}
	ps.mergedMu.Lock()
	if ps.merged != nil {
		ps.merged.SetParallel(degree, gate)
	}
	ps.mergedMu.Unlock()
}

// SetLogger attaches a structured logger to every partition (and the
// merged fallback store); see Store.SetLogger.
func (ps *PartitionedStore) SetLogger(l *slog.Logger) {
	ps.logger = l
	for _, p := range ps.parts {
		p.SetLogger(l)
	}
	ps.mergedMu.Lock()
	if ps.merged != nil {
		ps.merged.SetLogger(l)
	}
	ps.mergedMu.Unlock()
}

// ExecStats sums the partitions' dispatched-morsel counters with the
// merged fallback store's.
func (ps *PartitionedStore) ExecStats() (morsels uint64) {
	ps.mergedMu.Lock()
	if ps.merged != nil {
		morsels += ps.merged.ExecStats()
	}
	ps.mergedMu.Unlock()
	for _, p := range ps.parts {
		morsels += p.ExecStats()
	}
	return morsels
}

// Len returns the total triple count.
func (ps *PartitionedStore) Len() int {
	n := 0
	for _, p := range ps.parts {
		n += p.Len()
	}
	return n
}

// Version sums the partition version counters; it advances whenever any
// partition is mutated.
func (ps *PartitionedStore) Version() uint64 {
	var v uint64
	for _, p := range ps.parts {
		v += p.Version()
	}
	return v
}

// PlanCacheStats sums the partition plan cache counters.
func (ps *PartitionedStore) PlanCacheStats() (hits, misses uint64) {
	for _, p := range ps.parts {
		h, m := p.PlanCacheStats()
		hits += h
		misses += m
	}
	return hits, misses
}

// SpatialJoinStats sums partition-local probe counters with the global
// pairing probes of broadcast joins and the merged fallback store's
// probes.
func (ps *PartitionedStore) SpatialJoinStats() (probes uint64) {
	probes = ps.joinProbes.Load()
	ps.mergedMu.Lock()
	if ps.merged != nil {
		probes += ps.merged.SpatialJoinStats()
	}
	ps.mergedMu.Unlock()
	for _, p := range ps.parts {
		probes += p.SpatialJoinStats()
	}
	return probes
}

// AddFeature routes a feature to a partition by IRI hash.
func (ps *PartitionedStore) AddFeature(f Feature) error {
	return ps.parts[fnvHash(f.IRI)%uint32(len(ps.parts))].AddFeature(f)
}

// Build bulk-loads all partition indexes in parallel.
func (ps *PartitionedStore) Build() {
	var wg sync.WaitGroup
	for _, p := range ps.parts {
		wg.Add(1)
		go func(p *Store) {
			defer wg.Done()
			p.Build()
		}(p)
	}
	wg.Wait()
}

// QueryString parses and evaluates a query across all partitions.
func (ps *PartitionedStore) QueryString(qs string) (*sparql.Results, error) {
	q, err := sparql.Parse(qs)
	if err != nil {
		return nil, err
	}
	return ps.Query(q)
}

// Query fans the query out to every partition in parallel and merges the
// result rows, folding COUNT aggregates and re-applying DISTINCT, ORDER
// BY and LIMIT globally. When no global reordering or deduplication is
// needed, the limit is pushed down so each partition's slot pipeline
// short-circuits.
func (ps *PartitionedStore) Query(q *sparql.Query) (*sparql.Results, error) {
	return ps.QueryContext(context.Background(), q)
}

// QueryContext is Query with cancellation threaded into every
// partition's executor (see Store.QueryContext).
func (ps *PartitionedStore) QueryContext(ctx context.Context, q *sparql.Query) (*sparql.Results, error) {
	res, _, err := ps.queryCtx(ctx, q, false)
	return res, err
}

// QueryAnalyze is QueryContext with EXPLAIN ANALYZE profiling: the
// returned profile carries one sub-profile per partition (broadcast
// spatial joins, which run through a transient merged store, return a
// timing-only profile with a note instead).
func (ps *PartitionedStore) QueryAnalyze(ctx context.Context, q *sparql.Query) (*sparql.Results, *sparql.Profile, error) {
	return ps.queryCtx(ctx, q, true)
}

func (ps *PartitionedStore) queryCtx(ctx context.Context, q *sparql.Query, analyze bool) (*sparql.Results, *sparql.Profile, error) {
	start := time.Now()
	if joins := sparql.ExtractSpatialJoins(q); len(joins) > 0 {
		// Variable-variable spatial joins pair features across
		// partitions; per-partition evaluation would silently lose every
		// cross-partition pair.
		res, err := ps.querySpatialJoin(ctx, q, joins)
		if err != nil || !analyze {
			return res, nil, err
		}
		prof := &sparql.Profile{
			Query:       q.Canonical(),
			Fingerprint: q.Fingerprint(),
			ElapsedNs:   int64(time.Since(start)),
			Rows:        res.Len(),
			Note:        "broadcast spatial join across partitions: per-step executor profile not collected",
		}
		return res, prof, nil
	}
	type partRes struct {
		res  *sparql.Results
		prof *sparql.Profile
		err  error
	}
	// The limit survives pushdown only when partition results merge by
	// plain concatenation: any global sort or dedup could discard rows.
	// OFFSET never pushes down (each partition sees only part of the
	// stream), but it widens the pushed limit so enough rows survive.
	pushLimit := q.OrderBy == "" && !q.Distinct && len(q.Aggregates) == 0
	out := make([]partRes, len(ps.parts))
	var wg sync.WaitGroup
	for i, p := range ps.parts {
		wg.Add(1)
		go func(i int, p *Store) {
			defer wg.Done()
			local := *q
			local.Offset = 0
			if pushLimit && q.Limit > 0 {
				local.Limit = q.Limit + q.Offset
			} else {
				local.Limit = 0
			}
			if analyze {
				r, prof, err := p.QueryAnalyze(ctx, &local)
				out[i] = partRes{r, prof, err}
				return
			}
			r, err := p.QueryContext(ctx, &local)
			out[i] = partRes{res: r, err: err}
		}(i, p)
	}
	wg.Wait()
	var merged *sparql.Results
	var profs []*sparql.Profile
	for _, pr := range out {
		if pr.err != nil {
			return nil, nil, pr.err
		}
		profs = append(profs, pr.prof)
		if merged == nil {
			merged = pr.res
			continue
		}
		merged.Rows = append(merged.Rows, pr.res.Rows...)
	}
	if merged == nil {
		merged = &sparql.Results{Vars: q.Vars}
	}
	if len(q.Aggregates) > 0 {
		mergeAggregateRows(merged, q)
	}
	if q.Distinct {
		// Partitions deduplicate locally; identical rows can still
		// arrive from different partitions.
		dedupRows(merged)
	}
	if q.OrderBy != "" {
		sparql.SortRows(merged.Rows, q.OrderBy, q.OrderDesc)
	}
	sparql.ApplyOffsetLimit(merged, q)
	var prof *sparql.Profile
	if analyze {
		prof = &sparql.Profile{
			Query:       q.Canonical(),
			Fingerprint: q.Fingerprint(),
			ElapsedNs:   int64(time.Since(start)),
			Rows:        merged.Len(),
			Partitions:  profs,
		}
		for _, sub := range profs {
			if sub != nil {
				prof.Emitted += sub.Emitted
			}
		}
	}
	return merged, prof, nil
}

// mergeAggregateRows folds per-partition aggregate rows into global
// groups. Features are co-located, so every partition contributes
// disjoint solutions and COUNT columns simply sum; rows sharing a GROUP
// BY key (or the single global group) collapse into one.
func mergeAggregateRows(r *sparql.Results, q *sparql.Query) {
	type group struct {
		key    rdf.Term
		counts []int64
	}
	groups := map[string]*group{}
	var order []string
	for _, row := range r.Rows {
		key := ""
		if q.GroupBy != "" {
			key = row[q.GroupBy].String()
		}
		g := groups[key]
		if g == nil {
			g = &group{key: row[q.GroupBy], counts: make([]int64, len(q.Aggregates))}
			groups[key] = g
			order = append(order, key)
		}
		for i, a := range q.Aggregates {
			if n, err := row[a.As].Int(); err == nil {
				g.counts[i] += n
			}
		}
	}
	r.Rows = r.Rows[:0]
	for _, key := range order {
		g := groups[key]
		row := make(map[string]rdf.Term, len(q.Aggregates)+1)
		if q.GroupBy != "" {
			row[q.GroupBy] = g.key
		}
		for i, a := range q.Aggregates {
			row[a.As] = rdf.NewIntLiteral(g.counts[i])
		}
		r.Rows = append(r.Rows, row)
	}
}

// dedupRows removes duplicate result rows across partitions, keeping
// first-seen order.
func dedupRows(r *sparql.Results) {
	seen := make(map[string]bool, len(r.Rows))
	var key strings.Builder
	w := 0
	for _, row := range r.Rows {
		key.Reset()
		for _, v := range r.Vars {
			key.WriteString(row[v].String())
			key.WriteByte('\x00')
		}
		k := key.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		r.Rows[w] = row
		w++
	}
	r.Rows = r.Rows[:w]
}

func fnvHash(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// MemoryStats extends the RDF store's accounting with the geospatial
// structures: parsed geometries, the R-tree and the plan cache. Like
// rdf.Store.MemoryStats it is O(dictionary terms); scrape paths should
// cache the result per read rather than calling it per gauge.
func (s *Store) MemoryStats() telemetry.StoreMemory {
	m := s.rdfStore.MemoryStats()
	s.mu.RLock()
	m.Geometries = int64(len(s.geoms))
	nodes, entries := s.rtree.Stats()
	s.mu.RUnlock()
	m.RTreeNodes = int64(nodes)
	m.RTreeEntries = int64(entries)
	m.PlanCacheEntries = int64(s.plans.len())
	return m
}

// MemoryStats sums the partitions' accounting (plus the merged fallback
// store when one is cached) and records the partition count.
func (ps *PartitionedStore) MemoryStats() telemetry.StoreMemory {
	var m telemetry.StoreMemory
	for _, p := range ps.parts {
		pm := p.MemoryStats()
		m.Add(pm)
	}
	ps.mergedMu.Lock()
	merged := ps.merged
	ps.mergedMu.Unlock()
	if merged != nil {
		m.Add(merged.MemoryStats())
	}
	m.Partitions = int64(len(ps.parts))
	return m
}
