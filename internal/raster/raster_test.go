package raster

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestGridGeoreferencing(t *testing.T) {
	g := NewGrid(geom.Point{X: 100, Y: 200}, 10, 50, 40)
	b := g.Bounds()
	if b != geom.NewRect(100, 200, 600, 600) {
		t.Fatalf("Bounds = %v", b)
	}
	if g.NumCells() != 2000 {
		t.Errorf("NumCells = %d", g.NumCells())
	}
	c := g.CellCenter(0, 0)
	if c != (geom.Point{X: 105, Y: 205}) {
		t.Errorf("CellCenter(0,0) = %v", c)
	}
	col, row, ok := g.CellAt(geom.Point{X: 105, Y: 205})
	if !ok || col != 0 || row != 0 {
		t.Errorf("CellAt = %d,%d,%v", col, row, ok)
	}
	col, row, ok = g.CellAt(geom.Point{X: 599.9, Y: 599.9})
	if !ok || col != 49 || row != 39 {
		t.Errorf("CellAt far corner = %d,%d,%v", col, row, ok)
	}
	if _, _, ok := g.CellAt(geom.Point{X: 99, Y: 300}); ok {
		t.Error("point outside grid mapped to a cell")
	}
}

func TestGridRoundTripProperty(t *testing.T) {
	g := NewGrid(geom.Point{X: -50, Y: -50}, 2.5, 30, 30)
	for row := 0; row < g.Height; row++ {
		for col := 0; col < g.Width; col++ {
			c, r, ok := g.CellAt(g.CellCenter(col, row))
			if !ok || c != col || r != row {
				t.Fatalf("round trip failed at (%d,%d): got (%d,%d,%v)", col, row, c, r, ok)
			}
		}
	}
}

func TestInvalidGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid grid did not panic")
		}
	}()
	NewGrid(geom.Point{}, 0, 10, 10)
}

func TestImageAccessors(t *testing.T) {
	g := NewGrid(geom.Point{}, 1, 4, 3)
	im := NewImage(g, "B1", "B2")
	if im.BandIndex("B2") != 1 || im.BandIndex("nope") != -1 {
		t.Error("BandIndex")
	}
	im.Set(0, 2, 1, 7.5)
	if im.At(0, 2, 1) != 7.5 {
		t.Error("Set/At")
	}
	px := im.Pixel(2, 1)
	if px[0] != 7.5 || px[1] != 0 {
		t.Errorf("Pixel = %v", px)
	}
	if im.SizeBytes() != 2*12*4 {
		t.Errorf("SizeBytes = %d", im.SizeBytes())
	}
}

func TestStats(t *testing.T) {
	g := NewGrid(geom.Point{}, 1, 2, 2)
	im := NewImage(g, "b")
	copy(im.Bands[0].Data, []float32{1, 2, 3, 4})
	st := im.Stats(0)
	if st.Min != 1 || st.Max != 4 || st.Mean != 2.5 {
		t.Errorf("Stats = %+v", st)
	}
	wantStd := math.Sqrt(1.25)
	if math.Abs(st.StdDev-wantStd) > 1e-9 {
		t.Errorf("StdDev = %v, want %v", st.StdDev, wantStd)
	}
}

func TestNDVI(t *testing.T) {
	g := NewGrid(geom.Point{}, 1, 2, 1)
	im := NewImage(g, "red", "nir")
	im.Set(0, 0, 0, 0.1) // red
	im.Set(1, 0, 0, 0.5) // nir -> NDVI (0.5-0.1)/(0.6) = 0.666..
	// second pixel all zeros -> NDVI 0
	ndvi := NDVI(im, 0, 1)
	if math.Abs(float64(ndvi.Data[0])-0.6666667) > 1e-5 {
		t.Errorf("NDVI[0] = %v", ndvi.Data[0])
	}
	if ndvi.Data[1] != 0 {
		t.Errorf("NDVI[1] = %v, want 0 (zero denominator)", ndvi.Data[1])
	}
}

func TestNDWI(t *testing.T) {
	g := NewGrid(geom.Point{}, 1, 1, 1)
	im := NewImage(g, "green", "nir")
	im.Set(0, 0, 0, 0.4)
	im.Set(1, 0, 0, 0.1)
	ndwi := NDWI(im, 0, 1)
	if math.Abs(float64(ndwi.Data[0])-0.6) > 1e-6 {
		t.Errorf("NDWI = %v", ndwi.Data[0])
	}
}

func TestBoxFilterSmooths(t *testing.T) {
	g := NewGrid(geom.Point{}, 1, 5, 5)
	im := NewImage(g, "sar")
	// impulse in the center
	im.Set(0, 2, 2, 9)
	f := BoxFilter(im, 0, 1)
	if f.Data[2*5+2] != 1 { // 9 averaged over 3x3 = 1
		t.Errorf("center = %v, want 1", f.Data[2*5+2])
	}
	if f.Data[0] != 0 {
		t.Errorf("far corner = %v, want 0", f.Data[0])
	}
	// total energy is conserved away from borders for interior impulses
	var sum float32
	for _, v := range f.Data {
		sum += v
	}
	if math.Abs(float64(sum-9)) > 1e-5 {
		t.Errorf("sum = %v, want 9", sum)
	}
}

func TestLeeFilter(t *testing.T) {
	g := NewGrid(geom.Point{}, 1, 9, 9)
	im := NewImage(g, "sar")
	// homogeneous area with small noise: output should compress variance
	vals := []float32{1.0, 1.1, 0.9, 1.05, 0.95}
	for i := range im.Bands[0].Data {
		im.Bands[0].Data[i] = vals[i%len(vals)]
	}
	f := LeeFilter(im, 0, 1, 0.5) // sigma2 larger than local variance -> mean
	stBefore := im.Stats(0)
	im2 := &Image{Grid: g, Bands: []Band{f}}
	stAfter := im2.Stats(0)
	if stAfter.StdDev >= stBefore.StdDev {
		t.Errorf("Lee filter did not reduce variance: %v -> %v", stBefore.StdDev, stAfter.StdDev)
	}
}

func TestResample(t *testing.T) {
	g := NewGrid(geom.Point{}, 10, 4, 4) // 40x40 extent
	im := NewImage(g, "b")
	for row := 0; row < 4; row++ {
		for col := 0; col < 4; col++ {
			im.Set(0, col, row, float32(row*4+col))
		}
	}
	// Downsample to 20m cells: 2x2
	down := Resample(im, 20)
	if down.Grid.Width != 2 || down.Grid.Height != 2 {
		t.Fatalf("down grid = %dx%d", down.Grid.Width, down.Grid.Height)
	}
	// Upsample to 5m cells: 8x8, nearest neighbour repeats values
	up := Resample(im, 5)
	if up.Grid.Width != 8 || up.Grid.Height != 8 {
		t.Fatalf("up grid = %dx%d", up.Grid.Width, up.Grid.Height)
	}
	if up.At(0, 0, 0) != up.At(0, 1, 1) {
		t.Error("nearest upsample should repeat source cells")
	}
	if up.At(0, 0, 0) != im.At(0, 0, 0) {
		t.Error("upsample changed values")
	}
}

func TestClassMap(t *testing.T) {
	g := NewGrid(geom.Point{}, 1, 3, 3)
	cm := NewClassMap(g)
	cm.Set(1, 1, 5)
	if cm.At(1, 1) != 5 || cm.At(0, 0) != 0 {
		t.Error("Set/At")
	}
	h := cm.Histogram()
	if h[0] != 8 || h[5] != 1 {
		t.Errorf("Histogram = %v", h)
	}
}

func TestAgreement(t *testing.T) {
	g := NewGrid(geom.Point{}, 1, 2, 2)
	a := NewClassMap(g)
	b := NewClassMap(g)
	if Agreement(a, b) != 1 {
		t.Error("identical maps should agree fully")
	}
	b.Set(0, 0, 1)
	if Agreement(a, b) != 0.75 {
		t.Errorf("Agreement = %v, want 0.75", Agreement(a, b))
	}
	other := NewClassMap(NewGrid(geom.Point{}, 1, 3, 3))
	if Agreement(a, other) != 0 {
		t.Error("mismatched sizes should return 0")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewGrid(geom.Point{}, 1, 6, 6)
	cm := NewClassMap(g)
	// Two separate blobs of class 9: a 2x2 and a single cell.
	cm.Set(0, 0, 9)
	cm.Set(1, 0, 9)
	cm.Set(0, 1, 9)
	cm.Set(1, 1, 9)
	cm.Set(5, 5, 9)
	// Diagonal touch does NOT connect (4-connectivity).
	cm.Set(3, 3, 9)
	cm.Set(4, 4, 9)
	count, sizes := ConnectedComponents(cm, 9)
	if count != 4 {
		t.Fatalf("components = %d, want 4", count)
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 7 {
		t.Errorf("total cells = %d, want 7", total)
	}
	if c, _ := ConnectedComponents(cm, 42); c != 0 {
		t.Errorf("absent class components = %d", c)
	}
}

func TestModeFilter(t *testing.T) {
	g := NewGrid(geom.Point{}, 1, 5, 5)
	cm := NewClassMap(g)
	// single speckle pixel in a uniform field
	cm.Set(2, 2, 7)
	out := ModeFilter(cm, 1)
	if out.At(2, 2) != 0 {
		t.Errorf("speckle pixel survived mode filter: %d", out.At(2, 2))
	}
	// a solid 3x3 block survives
	cm2 := NewClassMap(g)
	for r := 1; r <= 3; r++ {
		for c := 1; c <= 3; c++ {
			cm2.Set(c, r, 9)
		}
	}
	out2 := ModeFilter(cm2, 1)
	if out2.At(2, 2) != 9 {
		t.Errorf("block centre lost: %d", out2.At(2, 2))
	}
}
