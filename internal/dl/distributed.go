package dl

import (
	"math/rand"
	"sync"
	"time"
)

// TrainConfig tunes a training run.
type TrainConfig struct {
	Epochs    int
	BatchSize int // global batch size, split across workers
	LR        float32
	Momentum  float32
	Workers   int
	Seed      int64
}

func (c TrainConfig) defaults() TrainConfig {
	if c.Epochs <= 0 {
		c.Epochs = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

// TrainStats reports a training run for the E4 tables.
type TrainStats struct {
	Strategy  string
	Workers   int
	Epochs    int
	Steps     int
	FinalLoss float64
	WallTime  time.Duration
	// CommBytes is the modeled synchronization traffic: ring allreduce
	// moves 2(N-1)/N of the parameter bytes per worker per step, the
	// parameter server 2x parameter bytes per worker step.
	CommBytes int64
	// SamplesPerSec is the end-to-end training throughput.
	SamplesPerSec float64
}

// Strategy is a distributed training strategy (the C1 axis of E4).
type Strategy interface {
	Name() string
	Train(spec ModelSpec, ds *Dataset, cfg TrainConfig) (*Network, TrainStats)
}

// SingleWorker is sequential mini-batch SGD: the one-GPU baseline the
// paper says published EO architectures are stuck at.
type SingleWorker struct{}

// Name implements Strategy.
func (SingleWorker) Name() string { return "single" }

// Train implements Strategy.
func (SingleWorker) Train(spec ModelSpec, ds *Dataset, cfg TrainConfig) (*Network, TrainStats) {
	cfg = cfg.defaults()
	net := spec.Build()
	opt := NewSGD(cfg.LR, cfg.Momentum)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	start := time.Now()
	steps := 0
	var loss float64
	for e := 0; e < cfg.Epochs; e++ {
		ds.Shuffle(rng)
		for lo := 0; lo < ds.Len(); lo += cfg.BatchSize {
			x, y := ds.Batch(lo, cfg.BatchSize)
			loss = net.TrainStep(x, y)
			opt.Step(net.Params(), net.Grads())
			steps++
		}
	}
	wall := time.Since(start)
	return net, TrainStats{
		Strategy: "single", Workers: 1, Epochs: cfg.Epochs, Steps: steps,
		FinalLoss: loss, WallTime: wall,
		SamplesPerSec: float64(ds.Len()*cfg.Epochs) / wall.Seconds(),
	}
}

// AllReduce is synchronous data-parallel SGD with collective gradient
// aggregation: every step, each of N workers computes gradients on 1/N of
// the global batch in parallel, gradients are summed (the collective),
// and one optimizer step updates the master model that all replicas then
// mirror — TensorFlow's CollectiveAllReduceStrategy on HOPS.
type AllReduce struct{}

// Name implements Strategy.
func (AllReduce) Name() string { return "allreduce" }

// Train implements Strategy.
func (AllReduce) Train(spec ModelSpec, ds *Dataset, cfg TrainConfig) (*Network, TrainStats) {
	cfg = cfg.defaults()
	w := cfg.Workers
	master := spec.Build()
	replicas := make([]*Network, w)
	for i := range replicas {
		replicas[i] = spec.Build()
		replicas[i].CopyParamsFrom(master)
	}
	opt := NewSGD(cfg.LR, cfg.Momentum)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	paramBytes := int64(master.NumParams()) * 4

	start := time.Now()
	steps := 0
	var commBytes int64
	var lastLoss float64
	losses := make([]float64, w)
	perWorker := (cfg.BatchSize + w - 1) / w

	for e := 0; e < cfg.Epochs; e++ {
		ds.Shuffle(rng)
		for lo := 0; lo < ds.Len(); lo += cfg.BatchSize {
			gx, gy := ds.Batch(lo, cfg.BatchSize)
			// Scatter the global batch across replicas and compute
			// gradients in parallel.
			var wg sync.WaitGroup
			for i := 0; i < w; i++ {
				wlo := i * perWorker
				whi := wlo + perWorker
				if wlo >= gx.Rows {
					break
				}
				if whi > gx.Rows {
					whi = gx.Rows
				}
				wg.Add(1)
				go func(i, wlo, whi int) {
					defer wg.Done()
					x := Matrix{Rows: whi - wlo, Cols: gx.Cols, Data: gx.Data[wlo*gx.Cols : whi*gx.Cols]}
					losses[i] = replicas[i].TrainStep(x, gy[wlo:whi])
				}(i, wlo, whi)
			}
			wg.Wait()

			// Collective: sum replica gradients into the master's
			// accumulators, scaled by shard fraction so the result equals
			// the full-batch gradient.
			master.ZeroGrads()
			mg := master.Grads()
			for i := 0; i < w; i++ {
				wlo := i * perWorker
				if wlo >= gx.Rows {
					break
				}
				whi := wlo + perWorker
				if whi > gx.Rows {
					whi = gx.Rows
				}
				frac := float32(whi-wlo) / float32(gx.Rows)
				rg := replicas[i].Grads()
				for j := range mg {
					for k := range mg[j].Data {
						mg[j].Data[k] += rg[j].Data[k] * frac
					}
				}
			}
			opt.Step(master.Params(), mg)
			// Broadcast: replicas mirror the master.
			for i := 0; i < w; i++ {
				replicas[i].CopyParamsFrom(master)
			}
			// Ring allreduce cost model: 2(N-1)/N parameter volumes per
			// worker per step.
			commBytes += int64(float64(paramBytes) * 2 * float64(w-1) / float64(w) * float64(w))
			steps++
			lastLoss = losses[0]
		}
	}
	wall := time.Since(start)
	return master, TrainStats{
		Strategy: "allreduce", Workers: w, Epochs: cfg.Epochs, Steps: steps,
		FinalLoss: lastLoss, WallTime: wall, CommBytes: commBytes,
		SamplesPerSec: float64(ds.Len()*cfg.Epochs) / wall.Seconds(),
	}
}

// ParameterServer is asynchronous data-parallel SGD: workers train on
// their shard and exchange (pull parameters, push gradients) with one
// central server whose lock serializes updates — TensorFlow's
// ParameterServerStrategy. The coordinator bottleneck that E4 shows at
// high worker counts is exactly this serialization.
type ParameterServer struct{}

// Name implements Strategy.
func (ParameterServer) Name() string { return "paramserver" }

// Train implements Strategy.
func (ParameterServer) Train(spec ModelSpec, ds *Dataset, cfg TrainConfig) (*Network, TrainStats) {
	cfg = cfg.defaults()
	w := cfg.Workers
	server := spec.Build()
	// Asynchronous workers apply W times as many updates per unit of
	// data as synchronous training; scaling the learning rate by 1/W
	// keeps the effective step size comparable and avoids divergence from
	// stale gradients (the standard async-SGD correction).
	opt := NewSGD(cfg.LR/float32(w), cfg.Momentum)
	var serverMu sync.Mutex
	paramBytes := int64(server.NumParams()) * 4

	perWorkerBatch := cfg.BatchSize / w
	if perWorkerBatch < 1 {
		perWorkerBatch = 1
	}

	start := time.Now()
	var commBytes int64
	var steps int
	var statsMu sync.Mutex
	var lastLoss float64

	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			shard := ds.Shard(i, w)
			if shard.Len() == 0 {
				return
			}
			replica := spec.Build()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*101))
			for e := 0; e < cfg.Epochs; e++ {
				shard.Shuffle(rng)
				for lo := 0; lo < shard.Len(); lo += perWorkerBatch {
					// Pull: mirror current server parameters.
					serverMu.Lock()
					replica.CopyParamsFrom(server)
					serverMu.Unlock()

					x, y := shard.Batch(lo, perWorkerBatch)
					loss := replica.TrainStep(x, y)

					// Push: apply this worker's gradients on the server.
					serverMu.Lock()
					opt.Step(server.Params(), replica.Grads())
					serverMu.Unlock()

					statsMu.Lock()
					commBytes += 2 * paramBytes
					steps++
					lastLoss = loss
					statsMu.Unlock()
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	return server, TrainStats{
		Strategy: "paramserver", Workers: w, Epochs: cfg.Epochs, Steps: steps,
		FinalLoss: lastLoss, WallTime: wall, CommBytes: commBytes,
		SamplesPerSec: float64(ds.Len()*cfg.Epochs) / wall.Seconds(),
	}
}
