// Package datasets builds the training corpora of Challenge C2: the
// synthetic EuroSAT-mirror benchmark (13 bands, 10 classes, 27 000
// samples, matching Helber et al. [11] in cardinality and shape) and the
// sea-ice training set for the Polar application, both drawn from the
// class-conditional generative model of internal/sentinel.
package datasets

import (
	"math/rand"

	"repro/internal/dl"
	"repro/internal/sentinel"
)

// EuroSATSize is the sample count of the original EuroSAT benchmark.
const EuroSATSize = 27000

// EuroSATVectors generates the pixel-spectrum variant of the benchmark:
// each sample is a 13-band reflectance vector with a balanced class
// distribution. It is the MLP/centroid workload of experiment E5.
func EuroSATVectors(n int, seed int64) *dl.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &dl.Dataset{
		X:       dl.NewMatrix(n, 13),
		Y:       make([]int, n),
		Classes: sentinel.NumLandCoverClasses,
	}
	for i := 0; i < n; i++ {
		class := uint8(i % sentinel.NumLandCoverClasses)
		copy(ds.X.Row(i), sentinel.SampleS2Pixel(class, rng))
		ds.Y[i] = int(class)
	}
	ds.Shuffle(rng)
	return ds
}

// EuroSATPatches generates the CNN variant: each sample is a flattened
// [13][k][k] patch of one class (uniform class per patch, per-pixel
// noise), the patch-classification workload of E5's CNN row.
func EuroSATPatches(n, k int, seed int64) *dl.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &dl.Dataset{
		X:       dl.NewMatrix(n, 13*k*k),
		Y:       make([]int, n),
		Classes: sentinel.NumLandCoverClasses,
	}
	for i := 0; i < n; i++ {
		class := uint8(i % sentinel.NumLandCoverClasses)
		row := ds.X.Row(i)
		for py := 0; py < k; py++ {
			for px := 0; px < k; px++ {
				pix := sentinel.SampleS2Pixel(class, rng)
				for b := 0; b < 13; b++ {
					// channel-major layout [C][H][W]
					row[b*k*k+py*k+px] = pix[b]
				}
			}
		}
		ds.Y[i] = int(class)
	}
	ds.Shuffle(rng)
	return ds
}

// SeaIceVectors generates the sea-ice classification training set: each
// sample is a dual-pol multi-look backscatter vector labelled with a WMO
// ice class. Used by the Polar application (A2, experiment E13).
func SeaIceVectors(n, looks int, seed int64) *dl.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &dl.Dataset{
		X:       dl.NewMatrix(n, 2),
		Y:       make([]int, n),
		Classes: sentinel.NumIceClasses,
	}
	for i := 0; i < n; i++ {
		class := uint8(i % sentinel.NumIceClasses)
		copy(ds.X.Row(i), sentinel.SampleS1Pixel(class, looks, rng))
		ds.Y[i] = int(class)
	}
	ds.Shuffle(rng)
	return ds
}

// CropVectors generates the crop-type training set for the Food Security
// application (A1): 13-band vectors restricted to the vegetation-bearing
// classes, labelled 0..len(classes)-1.
func CropVectors(n int, seed int64) (*dl.Dataset, []uint8) {
	classes := []uint8{
		sentinel.ClassAnnualCrop,
		sentinel.ClassPermanentCrop,
		sentinel.ClassPasture,
		sentinel.ClassForest,
	}
	rng := rand.New(rand.NewSource(seed))
	ds := &dl.Dataset{
		X:       dl.NewMatrix(n, 13),
		Y:       make([]int, n),
		Classes: len(classes),
	}
	for i := 0; i < n; i++ {
		label := i % len(classes)
		copy(ds.X.Row(i), sentinel.SampleS2Pixel(classes[label], rng))
		ds.Y[i] = label
	}
	ds.Shuffle(rng)
	return ds, classes
}
