// Package geom provides planar geometry primitives for Earth-observation
// data: points, rectangles, line strings, polygons and multi-polygons,
// together with WKT encoding, topological predicates and a bulk-loaded
// R-tree spatial index.
//
// Coordinates are interpreted as planar (projected) coordinates; for the
// synthetic workloads in this repository they are either metres in a local
// projection or degrees treated as planar, which is the same simplification
// Strabon's evaluation workloads used for selection queries.
package geom

import (
	"fmt"
	"math"
)

// Kind enumerates the geometry types supported by the library.
type Kind int

const (
	KindPoint Kind = iota
	KindRect
	KindLineString
	KindPolygon
	KindMultiPolygon
)

// String returns the WKT-style name of the kind.
func (k Kind) String() string {
	switch k {
	case KindPoint:
		return "POINT"
	case KindRect:
		return "ENVELOPE"
	case KindLineString:
		return "LINESTRING"
	case KindPolygon:
		return "POLYGON"
	case KindMultiPolygon:
		return "MULTIPOLYGON"
	default:
		return fmt.Sprintf("KIND(%d)", int(k))
	}
}

// Geometry is the interface implemented by all geometry values.
type Geometry interface {
	// Kind reports the geometry type.
	Kind() Kind
	// Bounds returns the minimum bounding rectangle.
	Bounds() Rect
	// WKT returns the Well-Known Text representation.
	WKT() string
}

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Kind implements Geometry.
func (p Point) Kind() Kind { return KindPoint }

// Bounds implements Geometry; a point's bounds is the degenerate rectangle
// at the point.
func (p Point) Bounds() Rect { return Rect{Min: p, Max: p} }

// WKT implements Geometry.
func (p Point) WKT() string { return fmt.Sprintf("POINT (%s %s)", fnum(p.X), fnum(p.Y)) }

// DistanceTo returns the Euclidean distance to q.
func (p Point) DistanceTo(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Rect is an axis-aligned rectangle with Min the lower-left corner and Max
// the upper-right corner. The zero Rect is the degenerate rectangle at the
// origin. Rects are closed: boundary points are contained.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(x1, y1, x2, y2 float64) Rect {
	if x2 < x1 {
		x1, x2 = x2, x1
	}
	if y2 < y1 {
		y1, y2 = y2, y1
	}
	return Rect{Min: Point{x1, y1}, Max: Point{x2, y2}}
}

// Kind implements Geometry.
func (r Rect) Kind() Kind { return KindRect }

// Bounds implements Geometry.
func (r Rect) Bounds() Rect { return r }

// WKT implements Geometry. Rectangles render as their polygon outline so
// that any WKT consumer can read them back.
func (r Rect) WKT() string {
	return fmt.Sprintf("POLYGON ((%s %s, %s %s, %s %s, %s %s, %s %s))",
		fnum(r.Min.X), fnum(r.Min.Y),
		fnum(r.Max.X), fnum(r.Min.Y),
		fnum(r.Max.X), fnum(r.Max.Y),
		fnum(r.Min.X), fnum(r.Max.Y),
		fnum(r.Min.X), fnum(r.Min.Y))
}

// Width returns Max.X-Min.X.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns Max.Y-Min.Y.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// IsValid reports whether Min <= Max on both axes.
func (r Rect) IsValid() bool { return r.Min.X <= r.Max.X && r.Min.Y <= r.Max.Y }

// ContainsPoint reports whether p lies in the closed rectangle.
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.Min.X >= r.Min.X && s.Max.X <= r.Max.X &&
		s.Min.Y >= r.Min.Y && s.Max.Y <= r.Max.Y
}

// Intersects reports whether the two closed rectangles share any point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Intersection returns the overlap of r and s; ok is false when they are
// disjoint, in which case the returned Rect is the zero value.
func (r Rect) Intersection(s Rect) (Rect, bool) {
	out := Rect{
		Min: Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Max: Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
	if !out.IsValid() {
		return Rect{}, false
	}
	return out, true
}

// Expand grows the rectangle by d on all sides.
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// DistanceToPoint returns the minimum distance from p to the rectangle,
// zero when the point is inside.
func (r Rect) DistanceToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// LineString is an open polyline through two or more points.
type LineString struct {
	Points []Point
}

// Kind implements Geometry.
func (l LineString) Kind() Kind { return KindLineString }

// Bounds implements Geometry.
func (l LineString) Bounds() Rect { return boundsOf(l.Points) }

// WKT implements Geometry.
func (l LineString) WKT() string {
	return "LINESTRING " + coordsWKT(l.Points)
}

// Length returns the total polyline length.
func (l LineString) Length() float64 {
	var total float64
	for i := 1; i < len(l.Points); i++ {
		total += l.Points[i-1].DistanceTo(l.Points[i])
	}
	return total
}

// Ring is a closed sequence of points; the closing edge from the last point
// back to the first is implicit (the last point need not repeat the first).
type Ring []Point

// Polygon is a shell ring with zero or more interior hole rings.
type Polygon struct {
	Shell Ring
	Holes []Ring
}

// Kind implements Geometry.
func (p Polygon) Kind() Kind { return KindPolygon }

// Bounds implements Geometry.
func (p Polygon) Bounds() Rect { return boundsOf(p.Shell) }

// WKT implements Geometry.
func (p Polygon) WKT() string { return "POLYGON " + p.wktBody() }

func (p Polygon) wktBody() string {
	out := "(" + ringWKT(p.Shell)
	for _, h := range p.Holes {
		out += ", " + ringWKT(h)
	}
	return out + ")"
}

// Area returns the polygon's area (shell minus holes) via the shoelace
// formula; orientation of the rings does not matter.
func (p Polygon) Area() float64 {
	a := math.Abs(ringArea(p.Shell))
	for _, h := range p.Holes {
		a -= math.Abs(ringArea(h))
	}
	return a
}

// MultiPolygon is a collection of polygons treated as one geometry.
type MultiPolygon struct {
	Polygons []Polygon
}

// Kind implements Geometry.
func (m MultiPolygon) Kind() Kind { return KindMultiPolygon }

// Bounds implements Geometry.
func (m MultiPolygon) Bounds() Rect {
	if len(m.Polygons) == 0 {
		return Rect{}
	}
	b := m.Polygons[0].Bounds()
	for _, p := range m.Polygons[1:] {
		b = b.Union(p.Bounds())
	}
	return b
}

// WKT implements Geometry.
func (m MultiPolygon) WKT() string {
	out := "MULTIPOLYGON ("
	for i, p := range m.Polygons {
		if i > 0 {
			out += ", "
		}
		out += p.wktBody()
	}
	return out + ")"
}

// Area returns the summed area of the member polygons.
func (m MultiPolygon) Area() float64 {
	var a float64
	for _, p := range m.Polygons {
		a += p.Area()
	}
	return a
}

// NumVertices returns the total vertex count across all rings, a proxy for
// geometry complexity used by the E2 experiment.
func (m MultiPolygon) NumVertices() int {
	n := 0
	for _, p := range m.Polygons {
		n += len(p.Shell)
		for _, h := range p.Holes {
			n += len(h)
		}
	}
	return n
}

// ringArea returns the signed shoelace area of the ring.
func ringArea(r Ring) float64 {
	if len(r) < 3 {
		return 0
	}
	var s float64
	for i := 0; i < len(r); i++ {
		j := (i + 1) % len(r)
		s += r[i].X*r[j].Y - r[j].X*r[i].Y
	}
	return s / 2
}

func boundsOf(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	b := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		if p.X < b.Min.X {
			b.Min.X = p.X
		}
		if p.Y < b.Min.Y {
			b.Min.Y = p.Y
		}
		if p.X > b.Max.X {
			b.Max.X = p.X
		}
		if p.Y > b.Max.Y {
			b.Max.Y = p.Y
		}
	}
	return b
}

func ringWKT(r Ring) string {
	// Rings close explicitly in WKT output.
	pts := make([]Point, 0, len(r)+1)
	pts = append(pts, r...)
	if len(r) > 0 && r[0] != r[len(r)-1] {
		pts = append(pts, r[0])
	}
	return coordsWKT(pts)
}

func coordsWKT(pts []Point) string {
	out := "("
	for i, p := range pts {
		if i > 0 {
			out += ", "
		}
		out += fnum(p.X) + " " + fnum(p.Y)
	}
	return out + ")"
}

// fnum formats a coordinate compactly (no trailing zeros).
func fnum(f float64) string {
	return trimFloat(fmt.Sprintf("%.10f", f))
}

func trimFloat(s string) string {
	// Strip trailing zeros and a trailing dot.
	i := len(s)
	for i > 0 && s[i-1] == '0' {
		i--
	}
	if i > 0 && s[i-1] == '.' {
		i--
	}
	return s[:i]
}

// RegularPolygon returns a convex polygon with n vertices approximating a
// circle of the given radius around center. It is the workload generator
// for the complex-geometry experiments (E2).
func RegularPolygon(center Point, radius float64, n int) Polygon {
	if n < 3 {
		n = 3
	}
	ring := make(Ring, n)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		ring[i] = Point{center.X + radius*math.Cos(a), center.Y + radius*math.Sin(a)}
	}
	return Polygon{Shell: ring}
}
