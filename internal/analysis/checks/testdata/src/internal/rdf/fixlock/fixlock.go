// Package fixlock mirrors rdf.Store's locking protocol for the
// locksafe analyzer: re-entrant method calls, channel operations, and
// write-lock callback/goroutine hand-offs are flagged; the read-lock
// executor contract (callbacks and workers under RLock) stays clean.
package fixlock

import "sync"

// Store mirrors the engine's store: one RWMutex guarding the indexes.
type Store struct {
	mu     sync.RWMutex
	n      int
	notify chan int
}

// Add acquires the write lock directly.
func (s *Store) Add(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n += v
}

// AddAll acquires transitively through Add — the fixpoint must mark it
// an acquirer too.
func (s *Store) AddAll(vs []int) {
	for _, v := range vs {
		s.Add(v)
	}
}

func (s *Store) reenter(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Add(v) // want `Add re-acquires the Store lock already held here: deadlock`
}

func (s *Store) reenterTransitive(vs []int) {
	s.mu.RLock()
	s.AddAll(vs) // want `AddAll re-acquires the Store lock already held here: deadlock`
	s.mu.RUnlock()
}

func (s *Store) sendLocked(v int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.notify <- v // want `channel send while holding the Store lock can block all writers`
}

func (s *Store) recvLocked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.notify // want `channel receive while holding the Store lock can block all readers and writers`
}

func (s *Store) callbackWrite(fn func(int)) {
	s.mu.Lock()
	fn(s.n) // want `function-value call under the Store write lock`
	s.mu.Unlock()
}

// callbackRead is the contracted shape: callbacks run under the read
// lock (the plan executor's emit path).
func (s *Store) callbackRead(fn func(int)) {
	s.mu.RLock()
	fn(s.n)
	s.mu.RUnlock()
}

func (s *Store) spawnWrite() {
	s.mu.Lock()
	go s.drain() // want `goroutine launched while holding the Store write lock`
	s.mu.Unlock()
}

func (s *Store) drain() {
	for range s.notify {
	}
}

// spawnRead matches the parallel executor: workers launch under the
// read lock, and their literals' bodies are not part of the locked
// region — the Add and send inside run on the worker goroutine.
func (s *Store) spawnRead(fn func(int)) {
	s.mu.RLock()
	go func() {
		s.Add(1)
		s.notify <- 1
	}()
	fn(0)
	s.mu.RUnlock()
}

// unlockFirst releases before re-entering: clean.
func (s *Store) unlockFirst(v int) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.Add(v)
}
