package rdf

import (
	"fmt"
	"sync"
)

// ID is a dictionary-encoded term identifier. IDs are dense, starting at 1;
// 0 is reserved as "no term".
type ID int64

// NoID is the zero, invalid identifier.
const NoID ID = 0

// Dict interns Terms to dense integer IDs and back. It is safe for
// concurrent use; lookups after loading take only a read lock.
type Dict struct {
	mu     sync.RWMutex
	byTerm map[Term]ID
	byID   []Term // byID[id-1] == term
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byTerm: make(map[Term]ID)}
}

// Encode interns the term, returning its ID (allocating one if new).
func (d *Dict) Encode(t Term) ID {
	d.mu.RLock()
	id, ok := d.byTerm[t]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byTerm[t]; ok {
		return id
	}
	d.byID = append(d.byID, t)
	id = ID(len(d.byID))
	d.byTerm[t] = id
	return id
}

// Lookup returns the ID for t without interning; ok is false if absent.
func (d *Dict) Lookup(t Term) (ID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.byTerm[t]
	return id, ok
}

// Decode returns the term for an ID; ok is false for invalid IDs.
func (d *Dict) Decode(id ID) (Term, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id <= 0 || int(id) > len(d.byID) {
		return Term{}, false
	}
	return d.byID[id-1], true
}

// MustDecode is Decode that panics on an invalid ID; the store only ever
// holds IDs it allocated, so an invalid ID is a programming error.
func (d *Dict) MustDecode(id ID) Term {
	t, ok := d.Decode(id)
	if !ok {
		panic("rdf: invalid dictionary ID")
	}
	return t
}

// Len returns the number of interned terms.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byID)
}

// Terms returns a copy of the interned terms in ID order (terms[i] has
// ID i+1). Snapshot writers persist this as the dictionary segment.
func (d *Dict) Terms() []Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]Term(nil), d.byID...)
}

// Range calls fn with every (ID, Term) pair in ID order until fn returns
// false. The iteration works on a stable view captured at call time;
// terms interned during the iteration may or may not be visited.
func (d *Dict) Range(fn func(ID, Term) bool) {
	d.mu.RLock()
	terms := d.byID
	d.mu.RUnlock()
	for i, t := range terms {
		if !fn(ID(i+1), t) {
			return
		}
	}
}

// adopt replaces the contents of an empty dictionary with terms (IDs
// 1..len(terms) in order) and their prebuilt reverse map. Used by
// snapshot recovery, which constructs the map off-thread.
func (d *Dict) adopt(terms []Term, byTerm map[Term]ID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.byID) != 0 {
		return fmt.Errorf("rdf: dictionary already holds %d terms", len(d.byID))
	}
	d.byID = append([]Term(nil), terms...)
	d.byTerm = byTerm
	return nil
}

// TextBytes returns the total text bytes held by interned terms (value
// + datatype + language tag), the allocator-independent part of the
// dictionary's memory footprint. O(terms): callers scraping it per
// metrics read should cache the walk (see telemetry prepare hooks).
func (d *Dict) TextBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var n int64
	for _, t := range d.byID {
		n += int64(len(t.Value) + len(t.Datatype) + len(t.Lang))
	}
	return n
}
