// Package rdf implements the RDF data model and an in-memory,
// dictionary-encoded, triple-indexed store: the substrate on which the
// geospatial RDF store (internal/geostore, the re-engineered Strabon of
// Challenge C3) and the federation engine (internal/federate, Semagrow)
// are built.
//
// Terms are IRIs, literals (optionally typed or language-tagged) and blank
// nodes. The store interns terms into integer IDs and maintains SPO, POS
// and OSP orderings so that every triple-pattern access path is a sorted
// range scan.
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind distinguishes the three RDF term categories.
type TermKind uint8

const (
	// IRI is an internationalized resource identifier term.
	IRI TermKind = iota
	// Literal is a (possibly typed or language-tagged) literal term.
	Literal
	// Blank is a blank node term.
	Blank
)

// Common XSD datatype IRIs used throughout the repository.
const (
	XSDString   = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger  = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDouble   = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean  = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDDateTime = "http://www.w3.org/2001/XMLSchema#dateTime"
	// WKTLiteral is the GeoSPARQL datatype for geometry literals.
	WKTLiteral = "http://www.opengis.net/ont/geosparql#wktLiteral"
)

// Well-known vocabulary IRIs.
const (
	RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	// GeoHasGeometry and GeoAsWKT mirror the GeoSPARQL property path
	// geo:hasGeometry/geo:asWKT that Strabon workloads use.
	GeoHasGeometry = "http://www.opengis.net/ont/geosparql#hasGeometry"
	GeoAsWKT       = "http://www.opengis.net/ont/geosparql#asWKT"
)

// Term is an RDF term. The zero value is not a valid term; use the
// constructors.
type Term struct {
	Kind TermKind
	// Value is the IRI string, the literal lexical form, or the blank
	// node label.
	Value string
	// Datatype is the datatype IRI for typed literals ("" for plain).
	Datatype string
	// Lang is the language tag for language-tagged literals.
	Lang string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewBlank returns a blank-node term with the given label.
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// NewLiteral returns a plain string literal.
func NewLiteral(lex string) Term { return Term{Kind: Literal, Value: lex} }

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: Literal, Value: lex, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: Literal, Value: lex, Lang: lang}
}

// NewIntLiteral returns an xsd:integer literal.
func NewIntLiteral(v int64) Term {
	return NewTypedLiteral(strconv.FormatInt(v, 10), XSDInteger)
}

// NewFloatLiteral returns an xsd:double literal.
func NewFloatLiteral(v float64) Term {
	return NewTypedLiteral(strconv.FormatFloat(v, 'g', -1, 64), XSDDouble)
}

// NewBoolLiteral returns an xsd:boolean literal.
func NewBoolLiteral(v bool) Term {
	return NewTypedLiteral(strconv.FormatBool(v), XSDBoolean)
}

// NewWKTLiteral returns a geo:wktLiteral with the given WKT lexical form.
func NewWKTLiteral(wkt string) Term { return NewTypedLiteral(wkt, WKTLiteral) }

// IsGeometry reports whether the term is a geo:wktLiteral.
func (t Term) IsGeometry() bool {
	return t.Kind == Literal && t.Datatype == WKTLiteral
}

// Int returns the integer value of an xsd:integer literal.
func (t Term) Int() (int64, error) {
	if t.Kind != Literal {
		return 0, fmt.Errorf("rdf: term %s is not a literal", t)
	}
	return strconv.ParseInt(t.Value, 10, 64)
}

// Float returns the floating-point value of a numeric literal.
func (t Term) Float() (float64, error) {
	if t.Kind != Literal {
		return 0, fmt.Errorf("rdf: term %s is not a literal", t)
	}
	return strconv.ParseFloat(t.Value, 64)
}

// String renders the term in N-Triples-like syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	case Literal:
		s := escapeLiteral(t.Value)
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" && t.Datatype != XSDString {
			return s + "^^<" + t.Datatype + ">"
		}
		return s
	default:
		return fmt.Sprintf("?!%d(%s)", t.Kind, t.Value)
	}
}

// ParseTerm parses the N-Triples-like syntax produced by Term.String.
func ParseTerm(s string) (Term, error) {
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "<") && strings.HasSuffix(s, ">"):
		return NewIRI(s[1 : len(s)-1]), nil
	case strings.HasPrefix(s, "_:"):
		return NewBlank(s[2:]), nil
	case strings.HasPrefix(s, "\""):
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return Term{}, fmt.Errorf("rdf: unterminated literal %q", s)
		}
		lex, err := unescapeLiteral(s[:end+1])
		if err != nil {
			return Term{}, fmt.Errorf("rdf: bad literal %q: %v", s, err)
		}
		rest := s[end+1:]
		switch {
		case rest == "":
			return NewLiteral(lex), nil
		case strings.HasPrefix(rest, "@"):
			return NewLangLiteral(lex, rest[1:]), nil
		case strings.HasPrefix(rest, "^^<") && strings.HasSuffix(rest, ">"):
			return NewTypedLiteral(lex, rest[3:len(rest)-1]), nil
		default:
			return Term{}, fmt.Errorf("rdf: bad literal suffix %q", rest)
		}
	default:
		return Term{}, fmt.Errorf("rdf: cannot parse term %q", s)
	}
}

// Triple is a subject-predicate-object statement.
type Triple struct {
	S, P, O Term
}

// NewTriple is a convenience constructor.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples syntax.
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}
