package endpoint

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// This file is the store-introspection surface: GET /debug/store (triple
// counts, memory accounting, durability-layer listing) and
// GET /debug/cache (result-cache contents and hit rates), plus the auth
// gate all public /debug/* routes share. Debug responses expose query
// text and store internals, so on the public listener they require the
// load token; the admin mux (eeserve -pprof-addr, a non-public bind)
// serves them without auth.

// debugAuth wraps a debug handler with the load-token check for the
// public listener. With no LoadToken configured there is no credential
// that could grant access, so the routes answer 401 unconditionally and
// stay admin-mux-only.
func (s *Server) debugAuth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.authorizedLoad(r) {
			w.Header().Set("WWW-Authenticate", `Bearer realm="debug"`)
			http.Error(w, "debug endpoints require the load token; use the admin listener (-pprof-addr) for tokenless access", http.StatusUnauthorized)
			return
		}
		h(w, r)
	}
}

// maxDebugQueryLen bounds the query text echoed per cache item, so a
// single pathological query can't bloat the /debug/cache response.
const maxDebugQueryLen = 200

// debugCacheItem is one result-cache entry as served by /debug/cache.
type debugCacheItem struct {
	Query        string  `json:"query"`
	Format       string  `json:"format"`
	StoreVersion uint64  `json:"store_version"`
	Rows         int     `json:"rows"`
	Bytes        int     `json:"bytes"`
	AgeSeconds   float64 `json:"age_seconds"`
}

// handleDebugStore serves the store's introspection report: triple
// count and version, the engine's memory accounting (when it implements
// MemoryStatser), and the durability-layer listing supplied by
// Config.StorageStats (WAL segments, snapshot generations).
func (s *Server) handleDebugStore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	out := struct {
		Triples      int                    `json:"triples"`
		StoreVersion uint64                 `json:"store_version"`
		Memory       *telemetry.StoreMemory `json:"memory,omitempty"`
		Storage      any                    `json:"storage,omitempty"`
	}{
		Triples:      s.engine.Len(),
		StoreVersion: s.engine.Version(),
	}
	if ms, ok := s.engine.(MemoryStatser); ok {
		mem := ms.MemoryStats()
		out.Memory = &mem
	}
	if s.cfg.StorageStats != nil {
		out.Storage = s.cfg.StorageStats()
	}
	writeDebugJSON(w, out)
}

// handleDebugCache serves the result cache's live contents: capacity,
// hit/miss totals, and one row per entry (query text truncated, format,
// the store version it was computed against, body size, and age).
func (s *Server) handleDebugCache(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	now := time.Now()
	entries := s.cache.items()
	items := make([]debugCacheItem, 0, len(entries))
	for _, e := range entries {
		// The cache key appends "\x00"+geomVar to the canonical text;
		// strip the suffix so the report shows the query alone.
		q, _, _ := strings.Cut(e.key.query, "\x00")
		if len(q) > maxDebugQueryLen {
			q = q[:maxDebugQueryLen] + "…"
		}
		items = append(items, debugCacheItem{
			Query:        q,
			Format:       e.key.format.String(),
			StoreVersion: e.key.version,
			Rows:         e.rows,
			Bytes:        len(e.body),
			AgeSeconds:   now.Sub(e.at).Seconds(),
		})
	}
	hits, misses := s.metrics.cacheHits.Load(), s.metrics.cacheMisses.Load()
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	out := struct {
		Capacity int              `json:"capacity"`
		Entries  int              `json:"entries"`
		Hits     uint64           `json:"hits"`
		Misses   uint64           `json:"misses"`
		HitRatio float64          `json:"hit_ratio"`
		Items    []debugCacheItem `json:"items"`
	}{
		Capacity: s.cfg.CacheSize,
		Entries:  len(items),
		Hits:     hits,
		Misses:   misses,
		HitRatio: ratio,
		Items:    items,
	}
	writeDebugJSON(w, out)
}

func writeDebugJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
