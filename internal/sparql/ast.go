// Package sparql implements a parser and evaluator for the subset of
// stSPARQL/GeoSPARQL that the ExtremeEarth workloads need: SELECT queries
// over basic graph patterns with FILTER expressions, including the
// geospatial filter functions geof:sfIntersects, geof:sfContains,
// geof:sfWithin and geof:distance.
//
// The evaluator runs against internal/rdf stores directly; the geospatial
// store (internal/geostore) additionally recognises spatial filters in the
// parsed AST and accelerates them with its R-tree.
package sparql

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
)

// Well-known prefixes that are always in scope.
var builtinPrefixes = map[string]string{
	"rdf":  "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
	"rdfs": "http://www.w3.org/2000/01/rdf-schema#",
	"xsd":  "http://www.w3.org/2001/XMLSchema#",
	"geo":  "http://www.opengis.net/ont/geosparql#",
	"geof": "http://www.opengis.net/def/function/geosparql/",
	"ee":   "http://extremeearth.eu/ontology#",
}

// Aggregate is a projected aggregate such as (COUNT(?x) AS ?n).
type Aggregate struct {
	// Fn is the aggregate function name; only COUNT is supported.
	Fn string
	// Var is the counted variable ("" for COUNT(*)).
	Var string
	// As is the output variable name.
	As string
}

// Query is a parsed SELECT query.
type Query struct {
	// Vars lists the projected variable names (without '?'); empty with
	// Star true means SELECT *.
	Vars     []string
	Star     bool
	Distinct bool
	// Aggregates holds projected aggregates; when non-empty the query is
	// an aggregate query (grouped by GroupBy if set, else one group).
	Aggregates []Aggregate
	GroupBy    string
	Patterns   []rdf.TriplePattern
	Filters    []Expr
	Limit      int // 0 = no limit
	Offset     int // 0 = no offset
	OrderBy    string
	OrderDesc  bool
}

// String reconstructs an approximate query text (for logs).
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	if q.Star {
		b.WriteString("*")
	} else {
		for i, v := range q.Vars {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString("?" + v)
		}
	}
	b.WriteString(" WHERE { ")
	for _, p := range q.Patterns {
		b.WriteString(p.String() + " ")
	}
	for _, f := range q.Filters {
		b.WriteString("FILTER(" + f.String() + ") ")
	}
	b.WriteString("}")
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	if q.Offset > 0 {
		fmt.Fprintf(&b, " OFFSET %d", q.Offset)
	}
	return b.String()
}

// Expr is a filter expression AST node.
type Expr interface {
	String() string
}

// VarExpr references a variable.
type VarExpr struct{ Name string }

func (e VarExpr) String() string { return "?" + e.Name }

// ConstExpr holds a constant RDF term (literal or IRI).
type ConstExpr struct{ Term rdf.Term }

func (e ConstExpr) String() string { return e.Term.String() }

// CmpOp enumerates comparison operators.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

// CmpExpr is a binary comparison.
type CmpExpr struct {
	Op   CmpOp
	L, R Expr
}

func (e CmpExpr) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}

// AndExpr is a conjunction. String parenthesizes so that nesting survives
// round-trips: the canonical forms cache keys are built from must not
// collapse (?a || ?b) && ?c and ?a || (?b && ?c) onto one spelling.
type AndExpr struct{ L, R Expr }

func (e AndExpr) String() string { return "(" + e.L.String() + " && " + e.R.String() + ")" }

// OrExpr is a disjunction (parenthesized in String; see AndExpr).
type OrExpr struct{ L, R Expr }

func (e OrExpr) String() string { return "(" + e.L.String() + " || " + e.R.String() + ")" }

// NotExpr is a negation.
type NotExpr struct{ E Expr }

func (e NotExpr) String() string { return "!(" + e.E.String() + ")" }

// FuncExpr is a function call such as geof:sfIntersects(?g, "..."^^geo:wktLiteral).
type FuncExpr struct {
	// Name is the expanded function IRI.
	Name string
	Args []Expr
}

func (e FuncExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return "<" + e.Name + ">(" + strings.Join(parts, ", ") + ")"
}

// GeoSPARQL function IRIs (geof: namespace).
const (
	FnSfIntersects = "http://www.opengis.net/def/function/geosparql/sfIntersects"
	FnSfContains   = "http://www.opengis.net/def/function/geosparql/sfContains"
	FnSfWithin     = "http://www.opengis.net/def/function/geosparql/sfWithin"
	FnDistance     = "http://www.opengis.net/def/function/geosparql/distance"
)
