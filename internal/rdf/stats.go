package rdf

// This file defines the runtime-statistics sinks behind EXPLAIN ANALYZE.
// The executor (exec.go, exec_parallel.go) is instrumented with optional
// per-step counters: every collection point is guarded by a nil check on
// the run's stats sink, so the default (uninstrumented) execution path
// pays only a handful of predictable never-taken branches — no clock
// reads, no atomics, no allocations (BenchmarkAnalyzeOverhead pins the
// disabled-path cost at < 2%). Parallel runs give every worker its own
// private RunStats, merged once after the pool drains, so instrumented
// execution stays lock-free and atomics-free on the hot path too.

// StepRuntime accumulates one plan step's runtime counters.
//
// RowsIn counts upstream rows entering the step (invocations of the
// step); Matches counts index entries or probe candidates that matched
// the step's pattern before pushed filters ran; FilterDrops counts rows
// rejected by filters pushed to this step; ElapsedNs is inclusive wall
// time — the step and everything downstream of it — so a step's self
// time is its ElapsedNs minus the next step's.
type StepRuntime struct {
	RowsIn      int64
	Matches     int64
	FilterDrops int64
	ElapsedNs   int64
}

// RunStats collects one sequential execution's runtime profile: one
// StepRuntime per plan step plus the seed-stage and emit counters. Use
// NewRunStats to size it for a plan; a run with a non-nil sink collects,
// a nil sink costs (almost) nothing.
type RunStats struct {
	// Steps holds one entry per plan step, in execution order.
	Steps []StepRuntime
	// SeedRows counts seed rows entering the pipeline (1 for an
	// unseeded run with seed-stage filters); SeedDrops counts those
	// rejected by seed-stage filters.
	SeedRows, SeedDrops int64
	// Emitted counts rows that reached the emit callback (pre-LIMIT
	// truncation by the consumer, post pushed filters).
	Emitted int64
}

// NewRunStats returns a stats sink sized for the plan.
func (p *BGPPlan) NewRunStats() *RunStats {
	return &RunStats{Steps: make([]StepRuntime, len(p.steps))}
}

// add folds o into s (used by the parallel merge).
func (s *RunStats) add(o *RunStats) {
	for i := range o.Steps {
		s.Steps[i].RowsIn += o.Steps[i].RowsIn
		s.Steps[i].Matches += o.Steps[i].Matches
		s.Steps[i].FilterDrops += o.Steps[i].FilterDrops
		s.Steps[i].ElapsedNs += o.Steps[i].ElapsedNs
	}
	s.SeedRows += o.SeedRows
	s.SeedDrops += o.SeedDrops
	s.Emitted += o.Emitted
}

// WorkerRunStats is one parallel worker's contribution to a profiled
// run: the morsels it claimed, the rows it emitted, and its busy wall
// time (claim loop entry to exit — workers never block between morsels,
// so busy time over run elapsed time is the worker's utilization).
type WorkerRunStats struct {
	Morsels int64
	Rows    int64
	BusyNs  int64
}

// ParallelRunStats collects one parallel execution's runtime profile:
// the per-step counters merged across workers, the morsel count, and
// per-worker utilization. Pass it via ParallelOpts.Stats; RunParallel
// fills it before returning.
type ParallelRunStats struct {
	RunStats
	// Morsels is the number of morsels dispatched by this run.
	Morsels int64
	// Workers holds one entry per pool worker, indexed by worker id.
	Workers []WorkerRunStats
}

// StepInfo describes one compiled plan step for profiling callers: the
// access path chosen by the planner, the pattern it evaluates ("" for
// probe steps), the planner's cardinality estimate (negative when
// unknown, e.g. probe steps), and the labels of filters pushed to it.
type StepInfo struct {
	Access  string
	Pattern string
	Est     float64
	Filters []string
}

// StepInfos returns one StepInfo per plan step, aligned with
// RunStats.Steps, so profilers can pair measured counters with the
// planner's static description.
func (p *BGPPlan) StepInfos() []StepInfo {
	infos := make([]StepInfo, len(p.steps))
	for i := range p.steps {
		st := &p.steps[i]
		info := StepInfo{Access: st.access, Est: st.est}
		if st.probe == nil {
			info.Pattern = st.tp.String()
		}
		for _, f := range st.filters {
			info.Filters = append(info.Filters, f.Label)
		}
		infos[i] = info
	}
	return infos
}

// SeedFilterLabels returns the labels of filters attached to the seed
// stage (applied once per seed row before the first step).
func (p *BGPPlan) SeedFilterLabels() []string {
	var labels []string
	for _, f := range p.seedFilters {
		labels = append(labels, f.Label)
	}
	return labels
}
