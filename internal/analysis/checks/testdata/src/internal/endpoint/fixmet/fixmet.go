// Package fixmet is the metricsreg fixture: inline metric names and
// open label sets (flagged) against the const-name, closed-label
// registration idiom the engine uses (clean).
package fixmet

import "repro/internal/telemetry"

const (
	metricRequests = "fixmet_requests_total"
	metricErrors   = "fixmet_errors_total"
	metricQueue    = "fixmet_queue_depth"
)

var opNames = []string{"read", "write"}

func register(reg *telemetry.Registry, mode string) {
	reg.Counter(metricRequests, "Requests served.")
	reg.Counter("fixmet_inline_total", "Inline-named counter.") // want `metric name for Counter must be a package-level constant`

	name := "fixmet_dyn_depth"
	reg.Gauge(name, "Runtime-built name.") // want `metric name for Gauge must be a package-level constant`
	reg.Gauge(metricQueue+"_hwm", "Suffixed const name is fine.")

	cf := reg.CounterFamily(metricErrors, "Errors by op.")
	for _, op := range opNames {
		cf.Counter("op", op) // closed: range over a fixed package-level list
	}
	for _, idx := range []string{"spo", "pos"} {
		cf.Counter("index", idx) // closed: range over a literal list
	}
	cf.Counter("mode", mode) // want `label value for CounterFamily\.Counter is not closed at registration`

	gf := reg.GaugeFamily(metricRequests+"_by_mode", "Requests by mode.")
	gf.Const(1, "mode", "http")
	gf.Const(1, "mode", mode) // want `label value for GaugeFamily\.Const is not closed at registration`
}
