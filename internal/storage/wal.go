package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/rdf"
	"repro/internal/storage/vfs"
)

// Options tunes the write-ahead log's durability/throughput trade-off.
type Options struct {
	// SyncEvery fsyncs the log after every n-th commit (group commit);
	// values <= 1 sync on every commit. Unsynced commits survive process
	// crashes (the OS has the writes) but not machine crashes.
	SyncEvery int
	// NoSync skips fsync entirely. For bulk loads and tests.
	NoSync bool
	// Metrics, when non-nil, instruments the durability points (commit
	// latency, fsync latency, batch sizes, rotations, snapshot timings).
	// The per-triple Record path is never instrumented: nil or not, it
	// costs the same.
	Metrics *Metrics
	// FS is the filesystem everything runs against; nil means the real
	// one (vfs.OS). Tests substitute a fault-injecting implementation.
	FS vfs.FS
}

// fsys returns the effective filesystem.
func (o Options) fsys() vfs.FS {
	if o.FS != nil {
		return o.FS
	}
	return vfs.OS
}

// Log is an append-only, dictionary-encoded write-ahead log over one
// segment file. It implements rdf.Journal: the store calls Record for
// every novel triple (under its write lock) and Commit seals the
// buffered triples into one length-prefixed, CRC-framed record. All
// methods are safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	f    vfs.File
	w    *bufio.Writer
	opts Options

	// dict maps terms to segment-local IDs; definitions are written in
	// the record where a term first appears.
	dict   map[rdf.Term]uint64
	nextID uint64

	// current record under construction.
	defs    []byte // encoded novel term definitions
	nDefs   uint64
	triples []byte // encoded (s, p, o) ID tuples
	nTrip   uint64

	sinceSync int
	recorded  uint64 // triples recorded since open (monotonic across Rotate)
	torn      int64  // bytes truncated from a torn tail at OpenLog
	broken    error  // sticky write failure

	// flushed is the byte offset of the last record handed to the kernel
	// (survives process crash); durable is the prefix also covered by an
	// fsync (survives power loss). The replication feed ships only up to
	// durable: a replica must never apply a record the primary could
	// itself lose and truncate at the next recovery. Both reset on
	// Rotate (they are offsets within the current segment).
	flushed int64
	durable int64
}

// CreateLog creates (truncating) a fresh WAL segment at path.
func CreateLog(path string, opts Options) (*Log, error) {
	f, err := opts.fsys().OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		opts.Metrics.ioError("create")
		return nil, fmt.Errorf("storage: create WAL: %w", err)
	}
	return newLog(f, opts), nil
}

func newLog(f vfs.File, opts Options) *Log {
	return &Log{
		f:      f,
		w:      bufio.NewWriterSize(f, 1<<16),
		opts:   opts,
		dict:   make(map[rdf.Term]uint64),
		nextID: 1,
	}
}

// OpenLog opens an existing WAL segment for appending: it replays every
// valid record through fn (in commit order), truncates a torn tail if
// the final record is incomplete or fails its CRC, and positions the
// writer after the last valid record with the segment dictionary
// reconstructed. A missing file behaves like an empty one.
func OpenLog(path string, opts Options, fn func(batch []rdf.Triple) error) (*Log, error) {
	f, err := opts.fsys().OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		opts.Metrics.ioError("create")
		return nil, fmt.Errorf("storage: open WAL: %w", err)
	}
	terms, good, err := replayRecords(f, fn)
	if err != nil {
		closeDiscard(opts.Metrics, f)
		return nil, err
	}
	var torn int64
	if fi, statErr := f.Stat(); statErr == nil && fi.Size() > good {
		torn = fi.Size() - good
		if err := f.Truncate(good); err != nil {
			closeDiscard(opts.Metrics, f)
			return nil, fmt.Errorf("storage: truncate torn WAL tail: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		closeDiscard(opts.Metrics, f)
		return nil, fmt.Errorf("storage: seek WAL: %w", err)
	}
	l := newLog(f, opts)
	l.torn = torn
	// Everything replay accepted is on disk and (having survived
	// whatever ended the previous process) treated as durable.
	l.flushed, l.durable = good, good
	for i, t := range terms {
		l.dict[t] = uint64(i + 1)
	}
	l.nextID = uint64(len(terms) + 1)
	return l, nil
}

// ReplayLog replays every valid record of the segment at path through
// fn without opening it for writing. Like OpenLog it stops at the first
// damaged record; dropped reports how many trailing bytes were not
// replayed, so callers can distinguish a benign torn tail (expected on
// the youngest segment after a crash) from corruption inside a sealed
// segment (worth reporting).
func ReplayLog(path string, fn func(batch []rdf.Triple) error) (dropped int64, err error) {
	return replayLogFS(vfs.OS, path, fn)
}

func replayLogFS(fsys vfs.FS, path string, fn func(batch []rdf.Triple) error) (dropped int64, err error) {
	f, err := fsys.Open(path)
	if err != nil {
		return 0, fmt.Errorf("storage: replay WAL: %w", err)
	}
	defer f.Close()
	_, good, err := replayRecords(f, fn)
	if err != nil {
		return 0, err
	}
	if fi, statErr := f.Stat(); statErr == nil && fi.Size() > good {
		dropped = fi.Size() - good
	}
	return dropped, nil
}

// replayRecords scans records from the start of f, calling fn per valid
// record and accumulating the segment dictionary. It returns the
// dictionary and the byte offset just past the last valid record.
// Framing damage (short header, short payload, CRC mismatch, payload
// that does not decode) ends the scan without error: everything from
// the damaged record on is an uncommitted tail. Only fn errors and I/O
// errors other than EOF are reported.
func replayRecords(f vfs.File, fn func(batch []rdf.Triple) error) (terms []rdf.Term, good int64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("storage: seek WAL: %w", err)
	}
	r := bufio.NewReaderSize(f, 1<<16)
	var header [8]byte
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return terms, good, nil // clean end or torn header
			}
			return terms, good, fmt.Errorf("storage: read WAL: %w", err)
		}
		plen := binary.LittleEndian.Uint32(header[0:4])
		want := binary.LittleEndian.Uint32(header[4:8])
		if plen == 0 || plen > maxRecordLen {
			return terms, good, nil // corrupt length prefix: torn tail
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return terms, good, nil // torn payload
			}
			return terms, good, fmt.Errorf("storage: read WAL: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != want {
			return terms, good, nil // corrupt record
		}
		newTerms, batch, derr := decodeRecord(payload, terms)
		if derr != nil {
			// CRC passed but the payload does not decode: written by a
			// different format version or flipped bits that collided.
			// Treat as end-of-valid-log rather than failing recovery.
			return terms, good, nil
		}
		terms = newTerms
		if len(batch) > 0 && fn != nil {
			if err := fn(batch); err != nil {
				return terms, good, err
			}
		}
		good += int64(8 + plen)
	}
}

// decodeRecord decodes one record payload against the dictionary built
// so far, returning the extended dictionary and the record's triples.
func decodeRecord(payload []byte, terms []rdf.Term) ([]rdf.Term, []rdf.Triple, error) {
	// One string conversion per record; decoded term values alias it.
	d := &decoder{buf: string(payload)}
	nDefs, err := d.uvarint()
	if err != nil {
		return terms, nil, err
	}
	for i := uint64(0); i < nDefs; i++ {
		t, err := d.term()
		if err != nil {
			return terms, nil, err
		}
		terms = append(terms, t)
	}
	nTrip, err := d.uvarint()
	if err != nil {
		return terms, nil, err
	}
	batch := make([]rdf.Triple, 0, nTrip)
	for i := uint64(0); i < nTrip; i++ {
		var ids [3]uint64
		for j := range ids {
			v, err := d.uvarint()
			if err != nil {
				return terms, nil, err
			}
			if v == 0 || v > uint64(len(terms)) {
				return terms, nil, fmt.Errorf("storage: WAL triple references undefined term ID %d", v)
			}
			ids[j] = v
		}
		batch = append(batch, rdf.Triple{
			S: terms[ids[0]-1], P: terms[ids[1]-1], O: terms[ids[2]-1],
		})
	}
	if d.remaining() != 0 {
		return terms, nil, fmt.Errorf("storage: %d trailing bytes in WAL record", d.remaining())
	}
	return terms, batch, nil
}

// maxBufferedRecord is the soft cap on an in-construction record's
// payload. Record seals the current record once it grows past this, so
// the writer can never emit a record the reader's maxRecordLen guard
// would reject as torn (a giant AddBatch just becomes several records,
// which only narrows its atomicity under crash — never loses it
// silently).
const maxBufferedRecord = 1 << 26 // 64 MiB, ¼ of maxRecordLen

// Record buffers one triple into the current (uncommitted) record,
// emitting a dictionary definition for each term it has not seen in
// this segment. It satisfies rdf.Journal.
func (l *Log) Record(t rdf.Triple) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return l.broken
	}
	if len(l.defs)+len(l.triples) >= maxBufferedRecord {
		if err := l.commitLocked(); err != nil {
			return err
		}
	}
	var ids [3]uint64
	for i, term := range [3]rdf.Term{t.S, t.P, t.O} {
		id, ok := l.dict[term]
		if !ok {
			id = l.nextID
			l.nextID++
			l.dict[term] = id
			l.defs = appendTerm(l.defs, term)
			l.nDefs++
		}
		ids[i] = id
	}
	for _, id := range ids {
		l.triples = binary.AppendUvarint(l.triples, id)
	}
	l.nTrip++
	l.recorded++
	return nil
}

// Commit seals the buffered triples into one durable record. Depending
// on Options it may defer the fsync to a later commit (group commit);
// Sync forces it. An empty commit is a no-op.
func (l *Log) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.commitLocked()
}

func (l *Log) commitLocked() error {
	if l.broken != nil {
		return l.broken
	}
	if l.nTrip == 0 && l.nDefs == 0 {
		return nil
	}
	// One clock read per sealed record when instrumented; Record itself
	// (the per-triple hot path) never touches the clock.
	var commitStart time.Time
	if l.opts.Metrics != nil {
		commitStart = time.Now()
	}
	nTrip := l.nTrip
	payload := make([]byte, 0, 16+len(l.defs)+len(l.triples))
	payload = binary.AppendUvarint(payload, l.nDefs)
	payload = append(payload, l.defs...)
	payload = binary.AppendUvarint(payload, l.nTrip)
	payload = append(payload, l.triples...)
	if len(payload) > maxRecordLen {
		// Only reachable with a single term encoding near maxRecordLen
		// (Record seals well before the soft cap otherwise); refuse
		// rather than write a record replay would discard as torn.
		return l.fail("write", fmt.Errorf("record payload %d exceeds limit %d", len(payload), maxRecordLen))
	}

	var header [8]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(header[:]); err != nil {
		return l.fail("write", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return l.fail("write", err)
	}
	l.defs, l.nDefs = l.defs[:0], 0
	l.triples, l.nTrip = l.triples[:0], 0

	// Hand the record to the kernel immediately: a committed batch must
	// survive a process crash (only machine crashes wait on the
	// group-commit fsync below).
	if err := l.w.Flush(); err != nil {
		return l.fail("write", err)
	}
	l.flushed += int64(8 + len(payload))
	if l.opts.NoSync {
		// With fsync disabled there is no stronger durability point to
		// wait for; the flushed prefix is as durable as this log gets.
		l.durable = l.flushed
	}
	if l.opts.Metrics != nil {
		l.opts.Metrics.observeCommit(time.Since(commitStart), nTrip)
	}
	l.sinceSync++
	if !l.opts.NoSync && l.sinceSync >= max(1, l.opts.SyncEvery) {
		return l.syncLocked()
	}
	return nil
}

// Sync flushes buffered records and fsyncs the segment file.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return l.broken
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.w.Flush(); err != nil {
		return l.fail("write", err)
	}
	if !l.opts.NoSync {
		var syncStart time.Time
		if l.opts.Metrics != nil {
			syncStart = time.Now()
		}
		if err := l.f.Sync(); err != nil {
			return l.fail("fsync", err)
		}
		if l.opts.Metrics != nil {
			l.opts.Metrics.observeFsync(time.Since(syncStart))
		}
	}
	l.durable = l.flushed
	l.sinceSync = 0
	return nil
}

// DurableOffset returns the byte offset within the current segment up
// to which records are fsynced (or merely flushed under NoSync, where
// that is the strongest durability available). The replication feed
// never ships bytes past this point.
func (l *Log) DurableOffset() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Rotate seals and syncs the current segment, closes it, and starts a
// fresh empty segment at path with a reset dictionary. Triples recorded
// before Rotate returns are durable in the old segment; the caller (DB)
// is responsible for only deleting that segment once a snapshot
// covering it is on disk.
func (l *Log) Rotate(path string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return l.broken
	}
	if err := l.commitLocked(); err != nil {
		return err
	}
	if err := l.w.Flush(); err != nil {
		return l.fail("write", err)
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			return l.fail("fsync", err)
		}
	}
	if err := l.f.Close(); err != nil {
		return l.fail("close", err)
	}
	f, err := l.opts.fsys().OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return l.fail("rotate", err)
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	l.dict = make(map[rdf.Term]uint64)
	l.nextID = 1
	l.sinceSync = 0
	l.flushed, l.durable = 0, 0
	if l.opts.Metrics != nil {
		l.opts.Metrics.rotations.Inc()
	}
	return nil
}

// Recorded returns the number of triples recorded since the log was
// opened; it keeps counting across Rotate. The DB uses the delta since
// the last snapshot to drive compaction.
func (l *Log) Recorded() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recorded
}

// TornBytes returns how many bytes OpenLog truncated from this
// segment's torn tail (0 for a cleanly sealed log). Recovery reports it
// in RecoveryStats.
func (l *Log) TornBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.torn
}

// Close seals any buffered triples, syncs, and closes the segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		closeDiscard(l.opts.Metrics, l.f)
		return l.broken
	}
	if err := l.commitLocked(); err != nil {
		closeDiscard(l.opts.Metrics, l.f)
		return err
	}
	if err := l.syncLocked(); err != nil {
		closeDiscard(l.opts.Metrics, l.f)
		return err
	}
	return l.f.Close()
}

// closeDiscard closes f on a path already returning another error; the
// original error stays primary, but a close failure is still counted on
// storage_io_errors_total so leaked handles are observable.
func closeDiscard(m *Metrics, f vfs.File) {
	if err := f.Close(); err != nil {
		m.ioError("close")
	}
}

// Err returns the log's sticky failure, nil while healthy. Once set,
// every subsequent Record/Commit/Sync/Rotate returns it unchanged: the
// log never retries against the same file, because a failed write or
// fsync leaves the on-disk tail in an unknown state and appending past
// it could frame a record that replay would trust.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.broken
}

// fail marks the log broken so later calls fail fast instead of
// interleaving partial records after a write error, and surfaces the
// transition on the storage_io_errors_total / storage_degraded metrics.
func (l *Log) fail(op string, err error) error {
	l.opts.Metrics.ioError(op)
	if l.broken == nil {
		l.broken = fmt.Errorf("storage: WAL %s failed: %w", op, err)
		l.opts.Metrics.setDegraded()
	}
	return l.broken
}
