// Package repro holds the repository-level benchmark harness: one
// benchmark group per experiment E1–E15 (see EXPERIMENTS.md). These
// benchmarks measure the experiment kernels; the full parameter sweeps
// with formatted tables are produced by cmd/eebench.
package repro

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/catalogue"
	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/dl/datasets"
	"repro/internal/endpoint"
	"repro/internal/experiments"
	"repro/internal/federate"
	"repro/internal/geom"
	"repro/internal/geostore"
	"repro/internal/geotriples"
	"repro/internal/hopsfs"
	"repro/internal/interlink"
	"repro/internal/kvstore"
	"repro/internal/pcdss"
	"repro/internal/promet"
	"repro/internal/raster"
	"repro/internal/rdf"
	"repro/internal/seaice"
	"repro/internal/sentinel"
	"repro/internal/sparql"
	"repro/internal/storage"
	"repro/internal/storage/vfs"
	"repro/internal/telemetry"
	"repro/internal/trainingset"
)

var benchExtent = geom.NewRect(0, 0, 10000, 10000)

// --- E1: point selections ---

func pointStore(b *testing.B, mode geostore.Mode, n int) *geostore.Store {
	b.Helper()
	st := geostore.New(mode)
	for _, f := range geostore.GeneratePointFeatures(n, 42, benchExtent) {
		if err := st.AddFeature(f); err != nil {
			b.Fatal(err)
		}
	}
	st.Build()
	return st
}

func benchSelection(b *testing.B, query func(string) (interface{ Len() int }, error)) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	windows := make([]string, 16)
	for i := range windows {
		windows[i] = geostore.SelectionQuery(geostore.RandomWindow(rng, benchExtent, 0.01))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query(windows[i%len(windows)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_PointSelection_Naive(b *testing.B) {
	st := pointStore(b, geostore.ModeNaive, 10000)
	benchSelection(b, func(q string) (interface{ Len() int }, error) { return st.QueryString(q) })
}

func BenchmarkE1_PointSelection_Indexed(b *testing.B) {
	st := pointStore(b, geostore.ModeIndexed, 10000)
	benchSelection(b, func(q string) (interface{ Len() int }, error) { return st.QueryString(q) })
}

func BenchmarkE1_PointSelection_Partitioned(b *testing.B) {
	ps := geostore.NewPartitioned(4)
	for _, f := range geostore.GeneratePointFeatures(10000, 42, benchExtent) {
		if err := ps.AddFeature(f); err != nil {
			b.Fatal(err)
		}
	}
	ps.Build()
	benchSelection(b, func(q string) (interface{ Len() int }, error) { return ps.QueryString(q) })
}

// --- E2: multi-polygon complexity ---

func benchMultiPolygon(b *testing.B, mode geostore.Mode, vertices int) {
	st := geostore.New(mode)
	for _, f := range geostore.GenerateMultiPolygonFeatures(1000, 2, vertices/2, 11, benchExtent) {
		if err := st.AddFeature(f); err != nil {
			b.Fatal(err)
		}
	}
	st.Build()
	benchSelection(b, func(q string) (interface{ Len() int }, error) { return st.QueryString(q) })
}

func BenchmarkE2_MultiPolygon64_Naive(b *testing.B)   { benchMultiPolygon(b, geostore.ModeNaive, 64) }
func BenchmarkE2_MultiPolygon64_Indexed(b *testing.B) { benchMultiPolygon(b, geostore.ModeIndexed, 64) }
func BenchmarkE2_MultiPolygon512_Naive(b *testing.B)  { benchMultiPolygon(b, geostore.ModeNaive, 512) }
func BenchmarkE2_MultiPolygon512_Indexed(b *testing.B) {
	benchMultiPolygon(b, geostore.ModeIndexed, 512)
}

// --- E3: information extraction ---

func BenchmarkE3_InformationExtraction(b *testing.B) {
	platform := core.NewPlatform(4, 4)
	train := datasets.EuroSATVectors(4000, 71)
	net, _ := core.TrainLandCoverClassifier(dl.SingleWorker{}, train, 6, 1, 71)
	scenes := core.GenerateSceneProducts(2, 48, 72, benchExtent)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := platform.ExtractInformation(scenes, net)
		if res.Ratio < 0.3 {
			b.Fatalf("ratio = %v", res.Ratio)
		}
	}
}

// --- E4: distributed training ---

func benchTraining(b *testing.B, s dl.Strategy, workers int) {
	base := datasets.EuroSATVectors(4000, 17)
	spec := dl.ModelSpec{Arch: dl.ArchMLP, In: 13, Hidden: 128, Classes: 10, Seed: 17}
	cfg := dl.TrainConfig{Epochs: 1, BatchSize: 256, LR: 0.2, Momentum: 0.9, Workers: workers, Seed: 17}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds := &dl.Dataset{X: base.X.Clone(), Y: append([]int(nil), base.Y...), Classes: base.Classes}
		s.Train(spec, ds, cfg)
	}
}

func BenchmarkE4_Train_Single(b *testing.B)       { benchTraining(b, dl.SingleWorker{}, 1) }
func BenchmarkE4_Train_AllReduce4(b *testing.B)   { benchTraining(b, dl.AllReduce{}, 4) }
func BenchmarkE4_Train_ParamServer4(b *testing.B) { benchTraining(b, dl.ParameterServer{}, 4) }

// --- E5: EuroSAT classification ---

func BenchmarkE5_EuroSAT_CentroidPredict(b *testing.B) {
	ds := datasets.EuroSATVectors(4000, 21)
	train, test := ds.Split(0.8)
	nc := dl.FitNearestCentroid(train)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nc.Predict(test.X)
	}
}

func BenchmarkE5_EuroSAT_MLPPredict(b *testing.B) {
	ds := datasets.EuroSATVectors(4000, 21)
	train, test := ds.Split(0.8)
	spec := dl.ModelSpec{Arch: dl.ArchMLP, In: 13, Hidden: 64, Classes: 10, Seed: 21}
	net, _ := dl.SingleWorker{}.Train(spec, train, dl.TrainConfig{Epochs: 3, Seed: 21})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Predict(test.X)
	}
}

func BenchmarkE5_EuroSAT_CNNTrainStep(b *testing.B) {
	patch := datasets.EuroSATPatches(256, 8, 22)
	spec := dl.ModelSpec{Arch: dl.ArchCNN, In: 13, PatchH: 8, PatchW: 8, Hidden: 32, Classes: 10, Seed: 22}
	net := spec.Build()
	x, y := patch.Batch(0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.TrainStep(x, y)
	}
}

// --- E6: training set generation ---

func BenchmarkE6_TrainingSetGen(b *testing.B) {
	grid := raster.NewGrid(benchExtent.Min, benchExtent.Width()/200, 200, 200)
	layers := trainingset.GenerateCartography(benchExtent, 100, 23)
	truth := trainingset.Rasterize(layers, grid)
	scene := sentinel.GenerateS2Scene(truth, 24)
	cfg := trainingset.HarvestConfig{SamplesPerFeature: 50, Workers: 4, Seed: 25}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, _ := trainingset.Harvest(layers, scene, cfg)
		if ds.Len() == 0 {
			b.Fatal("no samples")
		}
	}
}

// --- E7: GeoTriples ---

func benchGeoTriples(b *testing.B, workers int) {
	src := benchFieldSource(5000)
	m := &geotriples.Mapping{
		SubjectTemplate: "http://extremeearth.eu/field/{id}",
		Class:           "http://extremeearth.eu/ontology#Field",
		POMs: []geotriples.PredicateObjectMap{
			{Predicate: "http://extremeearth.eu/ontology#crop",
				Kind: geotriples.ObjectIRI, Template: "http://extremeearth.eu/crop/{crop}"},
		},
		GeometryColumn: "wkt",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, stats, err := geotriples.TransformParallel(src, m, workers); err != nil || stats.Errors > 0 {
			b.Fatalf("transform: %v, %+v", err, stats)
		}
	}
}

func benchFieldSource(n int) *geotriples.Source {
	rng := rand.New(rand.NewSource(51))
	src := &geotriples.Source{Name: "fields", Columns: []string{"id", "crop", "wkt"}}
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*10000, rng.Float64()*10000
		src.Records = append(src.Records, geotriples.Record{
			"id":   fmt.Sprintf("%d", i),
			"crop": fmt.Sprintf("crop%d", i%5),
			"wkt":  geom.NewRect(x, y, x+50, y+50).WKT(),
		})
	}
	return src
}

func BenchmarkE7_GeoTriples_1Mapper(b *testing.B)  { benchGeoTriples(b, 1) }
func BenchmarkE7_GeoTriples_8Mappers(b *testing.B) { benchGeoTriples(b, 8) }

// --- E8: interlinking ---

func benchEntities(n int, seed int64, prefix string) []interlink.Entity {
	rng := rand.New(rand.NewSource(seed))
	out := make([]interlink.Entity, n)
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*10000, rng.Float64()*10000
		s := 50 + rng.Float64()*200
		out[i] = interlink.Entity{
			IRI:      fmt.Sprintf("http://extremeearth.eu/%s/%d", prefix, i),
			Geometry: geom.NewRect(x, y, x+s, y+s),
		}
	}
	return out
}

func benchInterlink(b *testing.B, f func(a, bs []interlink.Entity, cfg interlink.Config) ([]interlink.Link, interlink.Stats)) {
	a := benchEntities(1000, 61, "a")
	bs := benchEntities(1000, 62, "b")
	cfg := interlink.Config{Relation: interlink.RelIntersects, Workers: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(a, bs, cfg)
	}
}

func BenchmarkE8_Interlink_Naive(b *testing.B)   { benchInterlink(b, interlink.DiscoverNaive) }
func BenchmarkE8_Interlink_Blocked(b *testing.B) { benchInterlink(b, interlink.DiscoverBlocked) }
func BenchmarkE8_Interlink_MetaBlocked(b *testing.B) {
	benchInterlink(b, interlink.DiscoverMetaBlocked)
}
func BenchmarkE8_Interlink_Indexed(b *testing.B) { benchInterlink(b, interlink.DiscoverIndexed) }

// --- Spatial join: index join vs naive cross-product ---

// The BenchmarkSpatialJoin group tracks the variable-variable spatial
// join this repository used to degrade to a cartesian scan. The kernel
// pair runs the shared geom join core at the acceptance scale (10k x 10k
// geometries; the index join must be >=10x faster than the naive cross
// product). The query pair measures the same join through the full
// SPARQL pipeline: indexed mode runs an R-tree probe step, the cartesian
// baseline evaluates the filter per pair of candidate rows.

func benchSpatialJoinKernel(b *testing.B,
	f func(a, bs []interlink.Entity, cfg interlink.Config) ([]interlink.Link, interlink.Stats)) {
	b.Helper()
	a := benchEntities(10000, 61, "a")
	bs := benchEntities(10000, 62, "b")
	cfg := interlink.Config{Relation: interlink.RelIntersects}
	links, _ := f(a, bs, cfg)
	if len(links) == 0 {
		b.Fatal("warmup: no links")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(a, bs, cfg)
	}
}

func BenchmarkSpatialJoin_NaiveCross_10kx10k(b *testing.B) {
	benchSpatialJoinKernel(b, interlink.DiscoverNaive)
}

func BenchmarkSpatialJoin_Index_10kx10k(b *testing.B) {
	benchSpatialJoinKernel(b, interlink.DiscoverIndexed)
}

// spatialJoinStore loads n rectangle features per side under distinct
// classes into the given store.
func spatialJoinStore(b *testing.B, add func(geostore.Feature) error, n int) {
	b.Helper()
	for _, side := range []struct {
		class string
		seed  int64
	}{
		{"http://extremeearth.eu/ontology#Left", 61},
		{"http://extremeearth.eu/ontology#Right", 62},
	} {
		for _, e := range benchEntities(n, side.seed, side.class) {
			if err := add(geostore.Feature{IRI: e.IRI, Class: side.class, Geometry: e.Geometry}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

const spatialJoinQuery = `
	PREFIX ee: <http://extremeearth.eu/ontology#>
	SELECT ?a ?b WHERE {
		?a a ee:Left . ?a geo:hasGeometry ?ga . ?ga geo:asWKT ?g1 .
		?b a ee:Right . ?b geo:hasGeometry ?gb . ?gb geo:asWKT ?g2 .
		FILTER(geof:sfIntersects(?g1, ?g2))
	}`

func benchSpatialJoinQuery(b *testing.B, engine interface {
	Query(*sparql.Query) (*sparql.Results, error)
}) {
	b.Helper()
	q := sparql.MustParse(spatialJoinQuery)
	res, err := engine.Query(q)
	if err != nil {
		b.Fatalf("warmup: %v", err)
	}
	if res.Len() == 0 {
		b.Fatal("warmup: no rows")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpatialJoin_Query_Cartesian_1kx1k is the degradation this PR
// removed: naive mode evaluates the var-var filter over the full
// cross-product with per-pair WKT parsing (kept small — it is the slow
// baseline).
func BenchmarkSpatialJoin_Query_Cartesian_1kx1k(b *testing.B) {
	st := geostore.New(geostore.ModeNaive)
	spatialJoinStore(b, st.AddFeature, 1000)
	benchSpatialJoinQuery(b, st)
}

func BenchmarkSpatialJoin_Query_Index_1kx1k(b *testing.B) {
	st := geostore.New(geostore.ModeIndexed)
	spatialJoinStore(b, st.AddFeature, 1000)
	st.Build()
	benchSpatialJoinQuery(b, st)
}

func BenchmarkSpatialJoin_Query_Index_10kx10k(b *testing.B) {
	st := geostore.New(geostore.ModeIndexed)
	spatialJoinStore(b, st.AddFeature, 10000)
	st.Build()
	benchSpatialJoinQuery(b, st)
}

func BenchmarkSpatialJoin_Query_Partitioned4_10kx10k(b *testing.B) {
	ps := geostore.NewPartitioned(4)
	spatialJoinStore(b, ps.AddFeature, 10000)
	ps.Build()
	benchSpatialJoinQuery(b, ps)
}

// --- E9: federation ---

func benchFederation(b *testing.B, disableSelection bool) {
	fed := federate.New()
	const k = 8
	stripW := benchExtent.Width() / k
	for i := 0; i < k; i++ {
		region := geom.NewRect(benchExtent.Min.X+float64(i)*stripW, benchExtent.Min.Y,
			benchExtent.Min.X+float64(i+1)*stripW, benchExtent.Max.Y)
		st := geostore.New(geostore.ModeIndexed)
		for _, f := range geostore.GeneratePointFeatures(1000, int64(100+i), region) {
			if err := st.AddFeature(f); err != nil {
				b.Fatal(err)
			}
		}
		st.Build()
		fed.Register(federate.NewStoreEndpoint(fmt.Sprintf("ep%d", i), st, 0))
	}
	q := geostore.SelectionQuery(geom.NewRect(100, 1000, 900, 3000))
	parsed, err := parseBenchQuery(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fed.Query(parsed, federate.Options{DisableSourceSelection: disableSelection}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9_Federation_SelectionOn(b *testing.B)  { benchFederation(b, false) }
func BenchmarkE9_Federation_SelectionOff(b *testing.B) { benchFederation(b, true) }

// --- E10: semantic catalogue ---

func benchCatalogue(b *testing.B, n int) *catalogue.Catalogue {
	b.Helper()
	c := catalogue.New()
	for _, p := range sentinel.GenerateProducts(n, 3, benchExtent) {
		if err := c.AddProduct(p); err != nil {
			b.Fatal(err)
		}
	}
	barrier := geom.Polygon{Shell: geom.Ring{
		{X: 2000, Y: 2000}, {X: 6000, Y: 2200}, {X: 6200, Y: 5800}, {X: 1900, Y: 5600},
	}}
	if err := c.AddIceBarrier("NorskeOer", 2017, barrier); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		p := geom.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
		if err := c.AddIceberg(fmt.Sprintf("b%d", i), 2016+rng.Intn(3), p); err != nil {
			b.Fatal(err)
		}
	}
	c.Build()
	return c
}

func BenchmarkE10_Catalogue_AreaYear(b *testing.B) {
	c := benchCatalogue(b, 20000)
	window := geom.NewRect(1000, 1000, 3000, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ProductsInYearOverArea(2018, window); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10_Catalogue_IcebergQuery(b *testing.B) {
	c := benchCatalogue(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.IcebergsEmbedded("NorskeOer", 2017); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E11: HopsFS metadata ---

func benchFS(b *testing.B, shards, inline int, blockCost time.Duration) *hopsfs.FS {
	b.Helper()
	fs := hopsfs.New(kvstore.New(shards),
		hopsfs.WithInlineThreshold(inline),
		hopsfs.WithBlockStore(hopsfs.NewBlockStore(blockCost)))
	if err := fs.MkdirAll("/bench"); err != nil {
		b.Fatal(err)
	}
	return fs
}

func BenchmarkE11_HopsFS_Create(b *testing.B) {
	fs := benchFS(b, 8, 4096, 0)
	payload := []byte("x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.Create(fmt.Sprintf("/bench/f%d", i), payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11_HopsFS_Stat(b *testing.B) {
	fs := benchFS(b, 8, 4096, 0)
	if err := fs.Create("/bench/target", []byte("x")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Stat("/bench/target"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11_HopsFS_List100(b *testing.B) {
	fs := benchFS(b, 8, 4096, 0)
	for i := 0; i < 100; i++ {
		if err := fs.Create(fmt.Sprintf("/bench/f%03d", i), nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		names, err := fs.List("/bench")
		if err != nil || len(names) != 100 {
			b.Fatalf("list: %v, %d", err, len(names))
		}
	}
}

func benchSmallFileRead(b *testing.B, inline int) {
	fs := benchFS(b, 8, inline, hopsfs.DefaultBlockAccessCost)
	payload := make([]byte, 1024)
	if err := fs.Create("/bench/small", payload); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Read("/bench/small"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11_SmallFileRead_Inline(b *testing.B)     { benchSmallFileRead(b, 4096) }
func BenchmarkE11_SmallFileRead_BlockStore(b *testing.B) { benchSmallFileRead(b, 0) }

// --- E12: water maps ---

func BenchmarkE12_WaterMaps(b *testing.B) {
	grid := raster.NewGrid(benchExtent.Min, 10, 64, 64)
	truth := sentinel.GenerateLandCover(grid, 8, 31)
	weather := promet.GenerateWeather(150, 33)
	cfg := promet.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := promet.Run(truth, weather, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E13: sea-ice classification ---

func BenchmarkE13_SeaIce_ClassifyScene(b *testing.B) {
	grid := raster.NewGrid(benchExtent.Min, 100, 64, 64)
	truth := sentinel.GenerateIceChart(grid, 6, 41)
	scene := sentinel.GenerateS1Scene(truth, 8, 42)
	clf, _ := seaice.TrainClassifier(2000, 8, 5, 43)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seaice.ClassifyScene(scene, clf)
	}
}

func BenchmarkE13_SeaIce_MakeChart(b *testing.B) {
	grid := raster.NewGrid(benchExtent.Min, 100, 128, 128)
	truth := sentinel.GenerateIceChart(grid, 10, 41)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := seaice.MakeChart(truth, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E14: PCDSS codecs ---

func benchChart() *raster.ClassMap {
	grid := raster.NewGrid(benchExtent.Min, 1000, 128, 128)
	return sentinel.GenerateIceChart(grid, 10, 81)
}

func BenchmarkE14_PCDSS_EncodeRLE(b *testing.B) {
	cm := benchChart()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pcdss.EncodeRLE(cm)
	}
}

func BenchmarkE14_PCDSS_EncodeQuadtree(b *testing.B) {
	cm := benchChart()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pcdss.EncodeQuadtree(cm)
	}
}

// --- E15: archive velocity ---

func BenchmarkE15_Velocity_Ingest(b *testing.B) {
	products := sentinel.GenerateProducts(b.N, 91, benchExtent)
	arch := sentinel.NewArchive()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := arch.Ingest(products[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// parseBenchQuery parses an stSPARQL query for the federation benchmark.
func parseBenchQuery(q string) (*sparql.Query, error) { return sparql.Parse(q) }

// --- Endpoint: SPARQL protocol serving layer ---

// benchEndpoint drives the HTTP serving layer over a 10k-feature indexed
// store with a fixed rectangular selection, measuring full request
// round-trips through httptest recorders. cacheSize < 0 disables the
// result cache, isolating parse+eval+serialize cost; with caching on,
// every request after the first is a cache hit.
func benchEndpoint(b *testing.B, cacheSize int, format string) {
	b.Helper()
	st := geostore.New(geostore.ModeIndexed)
	for _, f := range geostore.GeneratePointFeatures(10000, 42, benchExtent) {
		if err := st.AddFeature(f); err != nil {
			b.Fatal(err)
		}
	}
	st.Build()
	srv := endpoint.New(st, endpoint.Config{CacheSize: cacheSize})
	// Like geostore.SelectionQuery but also projecting the geometry, so
	// the GeoJSON serializer has a WKT variable to render.
	query := fmt.Sprintf(`
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?f ?wkt WHERE {
			?f a ee:Feature .
			?f geo:hasGeometry ?g .
			?g geo:asWKT ?wkt .
			FILTER(geof:sfIntersects(?wkt, "%s"^^geo:wktLiteral))
		}`, geom.NewRect(1000, 1000, 4000, 4000).WKT())
	target := "/sparql?format=" + format + "&query=" + url.QueryEscape(query)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, target, nil)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// --- Query executor: compiled slot-based pipeline vs legacy evaluator ---

// The BenchmarkQuery group measures the hottest serving-path kernel —
// multi-pattern BGP joins with filters — on a 100k-triple dataset
// (10k point features × 10 triples: type, geometry pair, value, six
// band observations). Each workload runs through the legacy map-based
// evaluator (the reference oracle) and the compiled slot executor, on
// the uncached path: the slot variants re-plan every iteration.

const queryBenchFeatures = 10000 // ×10 triples per feature = 100k triples

// queryWorkload fetches a workload from the shared corpus in
// internal/experiments (also behind `eebench -bench-out`), so the root
// benchmarks and the JSON perf report measure identical queries.
func queryWorkload(b *testing.B, name string) experiments.QueryWorkload {
	b.Helper()
	for _, w := range experiments.QueryWorkloads {
		if w.Name == name {
			return w
		}
	}
	b.Fatalf("unknown query workload %q", name)
	return experiments.QueryWorkload{}
}

func benchQueryEval(b *testing.B, name string,
	eval func(*rdf.Store, *sparql.Query) (*sparql.Results, error)) {
	b.Helper()
	w := queryWorkload(b, name)
	st, _ := storageDataset(b, queryBenchFeatures)
	rst := st.RDF()
	q := sparql.MustParse(w.Query)
	if res, err := eval(rst, q); err != nil {
		b.Fatalf("warmup: %v", err)
	} else if res.Len() < w.MinRows {
		b.Fatalf("warmup: rows = %d, want >= %d", res.Len(), w.MinRows)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval(rst, q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() < w.MinRows {
			b.Fatalf("rows = %d, want >= %d", res.Len(), w.MinRows)
		}
	}
}

func BenchmarkQuery_JoinFilter_Legacy(b *testing.B) {
	benchQueryEval(b, "join_filter", sparql.EvalLegacy)
}
func BenchmarkQuery_JoinFilter_Slot(b *testing.B) {
	benchQueryEval(b, "join_filter", sparql.Eval)
}
func BenchmarkQuery_Distinct_Legacy(b *testing.B) {
	benchQueryEval(b, "distinct", sparql.EvalLegacy)
}
func BenchmarkQuery_Distinct_Slot(b *testing.B) {
	benchQueryEval(b, "distinct", sparql.Eval)
}
func BenchmarkQuery_OrderByLimit_Legacy(b *testing.B) {
	benchQueryEval(b, "order_by_limit", sparql.EvalLegacy)
}
func BenchmarkQuery_OrderByLimit_Slot(b *testing.B) {
	benchQueryEval(b, "order_by_limit", sparql.Eval)
}
func BenchmarkQuery_CountGroup_Legacy(b *testing.B) {
	benchQueryEval(b, "count_group", sparql.EvalLegacy)
}
func BenchmarkQuery_CountGroup_Slot(b *testing.B) {
	benchQueryEval(b, "count_group", sparql.Eval)
}

// BenchmarkQuery_JoinFilter_SlotPlanned executes a pre-compiled plan,
// isolating execution cost from planning (the serving path pays planning
// once per store version thanks to geostore's plan cache).
func BenchmarkQuery_JoinFilter_SlotPlanned(b *testing.B) {
	w := queryWorkload(b, "join_filter")
	st, _ := storageDataset(b, queryBenchFeatures)
	q := sparql.MustParse(w.Query)
	plan, err := sparql.CompilePlan(st.RDF(), q, sparql.PlanOpts{})
	if err != nil {
		b.Fatal(err)
	}
	if res, err := plan.Execute(); err != nil {
		b.Fatalf("warmup: %v", err)
	} else if res.Len() < w.MinRows {
		b.Fatalf("warmup: rows = %d, want >= %d", res.Len(), w.MinRows)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Execute(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel executor: morsel-driven worker pool ---

// The BenchmarkParallelQuery group measures the morsel-driven parallel
// executor against the sequential slot pipeline on the same 100k-triple
// band-observation dataset, at degrees 1/2/4/NumCPU. Degree 1 runs the
// full morsel machinery with a single worker — the overhead the
// acceptance bar holds within 5% of the sequential executor — while the
// spatial-refinement workload runs through the geostore so R-tree
// seeding and in-pipeline geometry refiners are part of what scales.
// Workloads are shared with `eebench -bench-group parallel`
// (experiments.ParallelWorkloads), so BENCH_parallel.json reports the
// identical queries.

// parallelBenchStore lazily builds one shared dataset for the group.
var parallelBenchStore *geostore.Store

func parallelBenchDataset(b *testing.B) *geostore.Store {
	b.Helper()
	if parallelBenchStore == nil {
		parallelBenchStore = experiments.ParallelBenchDataset(queryBenchFeatures)
	}
	return parallelBenchStore
}

func parallelWorkload(b *testing.B, name string) experiments.ParallelWorkload {
	b.Helper()
	for _, w := range experiments.ParallelWorkloads {
		if w.Name == name {
			return w
		}
	}
	b.Fatalf("unknown parallel workload %q", name)
	return experiments.ParallelWorkload{}
}

// benchParallelQuery measures one workload at one degree (0 = the
// sequential slot executor baseline).
func benchParallelQuery(b *testing.B, name string, degree int) {
	b.Helper()
	w := parallelWorkload(b, name)
	gst := parallelBenchDataset(b)
	q := sparql.MustParse(w.Query)

	var eval func() (*sparql.Results, error)
	if w.Spatial {
		d := degree
		if d == 0 {
			d = 1 // geostore runs sequentially below degree 2
		}
		eval = func() (*sparql.Results, error) {
			return experiments.ParallelSpatialQuery(gst, q, d)
		}
	} else {
		plan, err := sparql.CompilePlan(gst.RDF(), q, sparql.PlanOpts{})
		if err != nil {
			b.Fatal(err)
		}
		if degree == 0 {
			eval = plan.Execute
		} else {
			eval = func() (*sparql.Results, error) {
				return plan.ExecuteParallel(sparql.ParallelExec{Degree: degree})
			}
		}
	}
	res, err := eval()
	if err != nil {
		b.Fatalf("warmup: %v", err)
	}
	if res.Len() < w.MinRows {
		b.Fatalf("warmup: rows = %d, want >= %d", res.Len(), w.MinRows)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchParallelDegrees runs the sequential baseline plus degrees
// 1/2/4/NumCPU as sub-benchmarks.
func benchParallelDegrees(b *testing.B, name string) {
	b.Run("seq", func(b *testing.B) { benchParallelQuery(b, name, 0) })
	for _, d := range experiments.ParallelDegrees() {
		b.Run(fmt.Sprintf("d%d", d), func(b *testing.B) { benchParallelQuery(b, name, d) })
	}
}

func BenchmarkParallelQuery_LargeScan(b *testing.B)     { benchParallelDegrees(b, "large_scan") }
func BenchmarkParallelQuery_FilterHeavy(b *testing.B)   { benchParallelDegrees(b, "filter_heavy") }
func BenchmarkParallelQuery_SpatialRefine(b *testing.B) { benchParallelDegrees(b, "spatial_refine") }
func BenchmarkParallelQuery_CountGroup(b *testing.B)    { benchParallelDegrees(b, "count_group") }
func BenchmarkParallelQuery_OrderByLimit(b *testing.B)  { benchParallelDegrees(b, "order_by_limit") }

// The BenchmarkAnalyzeOverhead group measures EXPLAIN ANALYZE's
// instrumented executor against the plain one on the same dataset
// (workloads shared with `eebench -bench-group analyze`). The plain
// sub-benchmarks are the regression guard for the disabled path: stats
// collection is a nil-check on the hot path, so plain ns/op must stay
// within noise (the acceptance bar is 2%) of the pre-instrumentation
// executor — compare against BenchmarkParallelQuery_*/seq history.
func benchAnalyzeOverhead(b *testing.B, name string) {
	w := parallelWorkload(b, name)
	gst := parallelBenchDataset(b)
	q := sparql.MustParse(w.Query)

	var plain, analyzed func() (*sparql.Results, error)
	if w.Spatial {
		plain = func() (*sparql.Results, error) { return gst.Query(q) }
		analyzed = func() (*sparql.Results, error) {
			res, _, err := gst.QueryAnalyze(context.Background(), q)
			return res, err
		}
	} else {
		plan, err := sparql.CompilePlan(gst.RDF(), q, sparql.PlanOpts{})
		if err != nil {
			b.Fatal(err)
		}
		plain = plan.Execute
		analyzed = func() (*sparql.Results, error) {
			res, _, err := plan.ExecuteAnalyzed(nil)
			return res, err
		}
	}
	for _, mode := range []struct {
		name string
		eval func() (*sparql.Results, error)
	}{{"plain", plain}, {"analyzed", analyzed}} {
		b.Run(mode.name, func(b *testing.B) {
			res, err := mode.eval()
			if err != nil {
				b.Fatalf("warmup: %v", err)
			}
			if res.Len() < w.MinRows {
				b.Fatalf("warmup: rows = %d, want >= %d", res.Len(), w.MinRows)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mode.eval(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAnalyzeOverhead_LargeScan(b *testing.B) { benchAnalyzeOverhead(b, "large_scan") }
func BenchmarkAnalyzeOverhead_SpatialRefine(b *testing.B) {
	benchAnalyzeOverhead(b, "spatial_refine")
}

// --- Storage: durability engine (WAL + snapshots) ---

// storageDataset builds a geostore of n synthetic point features — each
// carrying six band-observation properties drawn from a shared
// vocabulary, like real EO metadata where predicates and quantized
// values repeat across features — and returns it together with its
// N-Triples serialization, the two cold restart inputs being compared.
func storageDataset(b *testing.B, n int) (*geostore.Store, string) {
	b.Helper()
	st := geostore.New(geostore.ModeIndexed)
	rng := rand.New(rand.NewSource(43))
	for _, f := range geostore.GeneratePointFeatures(n, 42, benchExtent) {
		for band := 0; band < 6; band++ {
			f.Props[fmt.Sprintf("http://extremeearth.eu/ontology#band%d", band)] =
				rdf.NewIntLiteral(int64(rng.Intn(256)))
		}
		if err := st.AddFeature(f); err != nil {
			b.Fatal(err)
		}
	}
	var nt strings.Builder
	for _, tr := range st.RDF().Triples() {
		nt.WriteString(tr.String())
		nt.WriteByte('\n')
	}
	return st, nt.String()
}

// BenchmarkStorage_WALAppend measures journaled write throughput:
// triples recorded and group-committed in batches of 100 with the
// default fsync cadence of the server (-wal-sync-every 8).
func BenchmarkStorage_WALAppend(b *testing.B) {
	dir := b.TempDir()
	l, err := storage.CreateLog(filepath.Join(dir, "wal.log"), storage.Options{SyncEvery: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	pred := rdf.NewIRI("http://extremeearth.eu/ontology#value")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("http://extremeearth.eu/feature/%d", i)),
			pred, rdf.NewIntLiteral(int64(i)))
		if err := l.Record(t); err != nil {
			b.Fatal(err)
		}
		if i%100 == 99 {
			if err := l.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := l.Commit(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "triples/s")
}

// benchWALAppend is the shared body of the telemetry overhead pair:
// journaled appends (no fsync, so the measured cost is CPU, not the
// disk) committed in batches of 100, with or without an instrumented
// log.
func benchWALAppend(b *testing.B, m *storage.Metrics) {
	dir := b.TempDir()
	l, err := storage.CreateLog(filepath.Join(dir, "wal.log"), storage.Options{NoSync: true, Metrics: m})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	pred := rdf.NewIRI("http://extremeearth.eu/ontology#value")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("http://extremeearth.eu/feature/%d", i)),
			pred, rdf.NewIntLiteral(int64(i)))
		if err := l.Record(t); err != nil {
			b.Fatal(err)
		}
		if i%100 == 99 {
			if err := l.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := l.Commit(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "triples/s")
}

// BenchmarkTelemetryOverhead_WALAppendDisabled is the baseline: no
// Metrics attached, so the hot path pays only nil checks.
func BenchmarkTelemetryOverhead_WALAppendDisabled(b *testing.B) {
	benchWALAppend(b, nil)
}

// BenchmarkTelemetryOverhead_WALAppendEnabled attaches a live registry;
// the delta against Disabled is the full telemetry cost (one clock read
// and three histogram observations per 100-triple commit — the
// per-triple Record path is never instrumented).
func BenchmarkTelemetryOverhead_WALAppendEnabled(b *testing.B) {
	benchWALAppend(b, storage.NewMetrics(telemetry.NewRegistry()))
}

// benchStream is the slice of vfs.File the stream pair exercises;
// *os.File satisfies it directly, so the baseline pays no adapter.
type benchStream interface {
	Write(p []byte) (int, error)
	Close() error
}

// benchStreamWrite is the shared body of the vfs overhead pair: a
// WAL-shaped buffered stream (64-byte frames, flush every 100) through
// whichever file handle open returns. Both variants issue identical
// syscalls; the delta is the cost of the vfs.File interface dispatch
// that every storage I/O now pays so crash tests can inject faults.
func benchStreamWrite(b *testing.B, open func(path string) (benchStream, error)) {
	f, err := open(filepath.Join(b.TempDir(), "stream.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<16)
	var rec [64]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(rec[:8], uint64(i))
		if _, err := w.Write(rec[:]); err != nil {
			b.Fatal(err)
		}
		if i%100 == 99 {
			if err := w.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "recs/s")
}

// BenchmarkVFSOverhead_StreamOS is the baseline: the stream goes to a
// bare *os.File, as the WAL did before the filesystem seam existed.
func BenchmarkVFSOverhead_StreamOS(b *testing.B) {
	benchStreamWrite(b, func(path string) (benchStream, error) {
		return os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	})
}

// BenchmarkVFSOverhead_StreamVFS routes the same stream through
// vfs.OS — the production default under every WAL and snapshot write.
// The delta against StreamOS is the full price of the seam.
func BenchmarkVFSOverhead_StreamVFS(b *testing.B) {
	benchStreamWrite(b, func(path string) (benchStream, error) {
		return vfs.OS.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	})
}

const storageBenchFeatures = 20000 // ×10 triples per feature = 200k triples

// BenchmarkStorage_ColdStart_Snapshot is the re-engineered restart
// path: load a binary snapshot (dictionary + encoded triples) into an
// empty store. Compare with BenchmarkStorage_ColdStart_NTriples — the
// acceptance target is a ≥5x faster restart.
func BenchmarkStorage_ColdStart_Snapshot(b *testing.B) {
	src, _ := storageDataset(b, storageBenchFeatures)
	path := filepath.Join(b.TempDir(), "s.snap")
	if err := storage.WriteSnapshotFile(path, src.RDF()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := rdf.NewStore()
		if _, err := storage.LoadSnapshotFile(path, st); err != nil {
			b.Fatal(err)
		}
		if st.Len() != src.Len() {
			b.Fatalf("loaded %d triples, want %d", st.Len(), src.Len())
		}
	}
	b.ReportMetric(float64(src.Len())*float64(b.N)/b.Elapsed().Seconds(), "triples/s")
}

// BenchmarkStorage_ColdStart_NTriples is the ephemeral baseline the
// snapshot path replaces: re-parse the whole N-Triples corpus.
func BenchmarkStorage_ColdStart_NTriples(b *testing.B) {
	src, nt := storageDataset(b, storageBenchFeatures)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := rdf.NewStore()
		if _, err := st.LoadNTriples(strings.NewReader(nt)); err != nil {
			b.Fatal(err)
		}
		if st.Len() != src.Len() {
			b.Fatalf("loaded %d triples, want %d", st.Len(), src.Len())
		}
	}
	b.ReportMetric(float64(src.Len())*float64(b.N)/b.Elapsed().Seconds(), "triples/s")
}

// BenchmarkStorage_Recovery measures a full crash recovery: open the
// data directory, load the snapshot, and replay a WAL tail of ~4k
// triples on top.
func BenchmarkStorage_Recovery(b *testing.B) {
	src, _ := storageDataset(b, storageBenchFeatures)
	dir := b.TempDir()
	db, err := storage.Open(dir, storage.Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	st := rdf.NewStore()
	if _, err := db.Recover(st); err != nil {
		b.Fatal(err)
	}
	st.SetJournal(db.Log())
	all := src.RDF().Triples()
	if err := st.AddBatch(all[:len(all)-4000]); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Snapshot(st); err != nil {
		b.Fatal(err)
	}
	if err := st.AddBatch(all[len(all)-4000:]); err != nil {
		b.Fatal(err)
	}
	if err := db.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db2, err := storage.Open(dir, storage.Options{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		st2 := rdf.NewStore()
		if _, err := db2.Recover(st2); err != nil {
			b.Fatal(err)
		}
		if st2.Len() != len(all) {
			b.Fatalf("recovered %d triples, want %d", st2.Len(), len(all))
		}
		b.StopTimer()
		db2.Close() // reopening requires releasing the segment handle
		b.StartTimer()
	}
}

// BenchmarkStorage_BulkLoad measures the parallel cold loader (sharded
// N-Triples + WKT parsing, single writer). The corpus uses multi-polygon
// features — the workload whose WKT parsing is expensive enough to
// shard; for point features the single writer dominates either way.
func benchBulkLoad(b *testing.B, workers int) {
	b.Helper()
	src := geostore.New(geostore.ModeIndexed)
	for _, f := range geostore.GenerateMultiPolygonFeatures(5000, 2, 64, 11, benchExtent) {
		if err := src.AddFeature(f); err != nil {
			b.Fatal(err)
		}
	}
	var sb strings.Builder
	for _, tr := range src.RDF().Triples() {
		sb.WriteString(tr.String())
		sb.WriteByte('\n')
	}
	nt := sb.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := geostore.New(geostore.ModeIndexed)
		n, err := storage.BulkLoad(strings.NewReader(nt), st, workers)
		if err != nil {
			b.Fatal(err)
		}
		if n != src.Len() {
			b.Fatalf("loaded %d, want %d", n, src.Len())
		}
	}
	b.ReportMetric(float64(src.Len())*float64(b.N)/b.Elapsed().Seconds(), "triples/s")
}

func BenchmarkStorage_BulkLoad_1Worker(b *testing.B)  { benchBulkLoad(b, 1) }
func BenchmarkStorage_BulkLoad_8Workers(b *testing.B) { benchBulkLoad(b, 8) }

func BenchmarkEndpoint_Uncached_JSON(b *testing.B)    { benchEndpoint(b, -1, "json") }
func BenchmarkEndpoint_Cached_JSON(b *testing.B)      { benchEndpoint(b, 256, "json") }
func BenchmarkEndpoint_Uncached_CSV(b *testing.B)     { benchEndpoint(b, -1, "csv") }
func BenchmarkEndpoint_Cached_CSV(b *testing.B)       { benchEndpoint(b, 256, "csv") }
func BenchmarkEndpoint_Uncached_GeoJSON(b *testing.B) { benchEndpoint(b, -1, "geojson") }
func BenchmarkEndpoint_Cached_GeoJSON(b *testing.B)   { benchEndpoint(b, 256, "geojson") }
