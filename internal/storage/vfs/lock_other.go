//go:build !unix

package vfs

// Lock is a no-op on platforms without flock; the lock file still
// exists as documentation but offers no mutual exclusion there.
func (f *osFile) Lock() error { return nil }
