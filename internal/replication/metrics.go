package replication

import (
	"repro/internal/telemetry"
)

// Metric family names; one const per family (see README "Metrics
// reference" — TestMetricsDocumentedInReadme keeps the table honest).
const (
	metricFramesShipped   = "replication_frames_shipped_total"
	metricBytesShipped    = "replication_bytes_shipped_total"
	metricFeedConnections = "replication_feed_connections"
	metricFramesApplied   = "replication_frames_applied_total"
	metricTriplesApplied  = "replication_triples_applied_total"
	metricReconnects      = "replication_reconnects_total"
	metricEpochRejections = "replication_epoch_rejections_total"
	metricLagBytes        = "replication_lag_bytes"
	metricLagSeconds      = "replication_lag_seconds"
	metricDegraded        = "replication_degraded"
	metricEpoch           = "replication_epoch"
)

// Metrics instruments both sides of WAL shipping; a primary only moves
// the feed-side instruments and a replica the apply-side ones, but the
// set registers together so dashboards address one namespace. nil
// disables instrumentation like storage.Metrics does.
type Metrics struct {
	reg *telemetry.Registry

	// Feed (primary) side.
	framesShipped map[byte]*telemetry.Counter
	bytesShipped  *telemetry.Counter
	connections   *telemetry.Gauge

	// Replica (apply) side.
	framesApplied   *telemetry.Counter
	triplesApplied  *telemetry.Counter
	reconnects      *telemetry.Counter
	epochRejections *telemetry.Counter
}

// NewMetrics registers the replication families on reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	m := &Metrics{reg: reg}
	ff := reg.CounterFamily(metricFramesShipped,
		"Frames written to replica WAL streams, by frame type.")
	m.framesShipped = map[byte]*telemetry.Counter{
		FrameBatch:     ff.Counter("type", "batch"),
		FrameHeartbeat: ff.Counter("type", "heartbeat"),
		FrameSealed:    ff.Counter("type", "sealed"),
		FrameGone:      ff.Counter("type", "gone"),
	}
	m.bytesShipped = reg.Counter(metricBytesShipped,
		"Bytes written to replica WAL streams (frames + payloads).")
	m.connections = reg.Gauge(metricFeedConnections,
		"Replica WAL stream connections currently open on this primary.")
	m.framesApplied = reg.Counter(metricFramesApplied,
		"Batch frames this replica has applied and acknowledged in its cursor.")
	m.triplesApplied = reg.Counter(metricTriplesApplied,
		"Triples applied from the replication stream.")
	m.reconnects = reg.Counter(metricReconnects,
		"Reconnect attempts by the replica after a retryable stream failure.")
	m.epochRejections = reg.Counter(metricEpochRejections,
		"Frames rejected because they carried an epoch below the replica's fence (stale primary).")
	return m
}

// attachReplicaStatus registers the replica's live lag/health gauges,
// computed from fn at scrape time so a stalled replica still reports
// growing lag rather than a frozen sample.
func (m *Metrics) attachReplicaStatus(fn func() Status) {
	if m == nil {
		return
	}
	m.reg.GaugeFunc(metricLagSeconds,
		"Seconds since this replica was last caught up with its primary's durable WAL end.",
		func() float64 { return fn().LagSeconds })
	m.reg.IntGaugeFunc(metricLagBytes,
		"Durable primary WAL bytes not yet applied by this replica (last observed).",
		func() int64 { return fn().LagBytes })
	m.reg.IntGaugeFunc(metricDegraded,
		"1 once replication has hit a sticky failure (CRC/epoch/pruned cursor/local storage); restart or re-bootstrap to recover.",
		func() int64 {
			if fn().Err != nil {
				return 1
			}
			return 0
		})
	m.reg.IntGaugeFunc(metricEpoch,
		"Highest replication epoch this node has durably observed.",
		func() int64 { return int64(fn().Epoch) })
}

// shipped counts one frame of n wire bytes; nil-safe.
func (m *Metrics) shipped(frameType byte, n int) {
	if m == nil {
		return
	}
	if c, ok := m.framesShipped[frameType]; ok {
		c.Inc()
	}
	m.bytesShipped.Add(uint64(n))
}

func (m *Metrics) connection(delta int64) {
	if m == nil {
		return
	}
	m.connections.Add(delta)
}

func (m *Metrics) applied(triples int) {
	if m == nil {
		return
	}
	m.framesApplied.Inc()
	m.triplesApplied.Add(uint64(triples))
}

func (m *Metrics) reconnect() {
	if m == nil {
		return
	}
	m.reconnects.Inc()
}

func (m *Metrics) epochRejected() {
	if m == nil {
		return
	}
	m.epochRejections.Inc()
}
