package federate

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/geostore"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// buildEndpoint creates an endpoint whose features live inside the given
// region.
func buildEndpoint(t *testing.T, name string, region geom.Rect, n int, seed int64) *StoreEndpoint {
	t.Helper()
	st := geostore.New(geostore.ModeIndexed)
	feats := geostore.GeneratePointFeatures(n, seed, region)
	for _, f := range feats {
		if err := st.AddFeature(f); err != nil {
			t.Fatal(err)
		}
	}
	st.Build()
	return NewStoreEndpoint(name, st, 0)
}

func buildFederation(t *testing.T) (*Federation, [4]geom.Rect) {
	t.Helper()
	// Four endpoints tiling a 2000x2000 world.
	regions := [4]geom.Rect{
		geom.NewRect(0, 0, 1000, 1000),
		geom.NewRect(1000, 0, 2000, 1000),
		geom.NewRect(0, 1000, 1000, 2000),
		geom.NewRect(1000, 1000, 2000, 2000),
	}
	f := New()
	for i, r := range regions {
		f.Register(buildEndpoint(t, fmt.Sprintf("ep%d", i), r, 100, int64(i+1)))
	}
	return f, regions
}

func TestFederatedSelectionQuery(t *testing.T) {
	f, _ := buildFederation(t)
	if f.Size() != 4 {
		t.Fatalf("Size = %d", f.Size())
	}
	// Window inside endpoint 0 only.
	q := geostore.SelectionQuery(geom.NewRect(100, 100, 500, 500))
	res, stats, err := f.QueryString(q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Queried != 1 {
		t.Errorf("Queried = %d, want 1 (three endpoints spatially pruned)", stats.Queried)
	}
	if stats.PrunedBySpace != 3 {
		t.Errorf("PrunedBySpace = %d, want 3", stats.PrunedBySpace)
	}
	if res.Len() == 0 {
		t.Error("no rows returned")
	}
}

func TestFederatedMatchesCentralized(t *testing.T) {
	f, _ := buildFederation(t)
	// A window spanning all four regions.
	window := geom.NewRect(500, 500, 1500, 1500)
	q := geostore.SelectionQuery(window)

	res, stats, err := f.QueryString(q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Queried != 4 {
		t.Errorf("Queried = %d, want 4", stats.Queried)
	}

	// Centralized reference: all features in one store.
	central := geostore.New(geostore.ModeIndexed)
	for i := 0; i < 4; i++ {
		region := geom.NewRect(float64(i%2)*1000, float64(i/2)*1000,
			float64(i%2)*1000+1000, float64(i/2)*1000+1000)
		for _, feat := range geostore.GeneratePointFeatures(100, int64(i+1), region) {
			if err := central.AddFeature(feat); err != nil {
				t.Fatal(err)
			}
		}
	}
	central.Build()
	want, err := central.QueryString(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != want.Len() {
		t.Errorf("federated %d rows, centralized %d", res.Len(), want.Len())
	}
}

func TestSourceSelectionDisabled(t *testing.T) {
	f, _ := buildFederation(t)
	q := sparql.MustParse(geostore.SelectionQuery(geom.NewRect(100, 100, 200, 200)))
	res1, s1, err := f.Query(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res2, s2, err := f.Query(q, Options{DisableSourceSelection: true})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Queried != 4 {
		t.Errorf("without selection Queried = %d, want 4", s2.Queried)
	}
	if s1.Queried >= s2.Queried {
		t.Errorf("selection did not reduce endpoints: %d vs %d", s1.Queried, s2.Queried)
	}
	if res1.Len() != res2.Len() {
		t.Errorf("pruning changed results: %d vs %d rows", res1.Len(), res2.Len())
	}
}

func TestPredicatePruning(t *testing.T) {
	f := New()
	// Endpoint with feature data.
	f.Register(buildEndpoint(t, "features", geom.NewRect(0, 0, 100, 100), 20, 1))
	// Endpoint with unrelated vocabulary.
	other := geostore.New(geostore.ModeIndexed)
	if err := other.Add(
		rdf.NewIRI("http://ex/doc1"),
		rdf.NewIRI("http://ex/title"),
		rdf.NewLiteral("a document"),
	); err != nil {
		t.Fatal(err)
	}
	f.Register(NewStoreEndpoint("documents", other, 0))

	q := `
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?f WHERE { ?f a ee:Feature . ?f ee:value ?v . }`
	_, stats, err := f.QueryString(q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PrunedByPredicate != 1 {
		t.Errorf("PrunedByPredicate = %d, want 1", stats.PrunedByPredicate)
	}
	if stats.Queried != 1 {
		t.Errorf("Queried = %d, want 1", stats.Queried)
	}
}

func TestGlobalOrderAndLimit(t *testing.T) {
	f, _ := buildFederation(t)
	q := `
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?f ?v WHERE { ?f a ee:Feature . ?f ee:value ?v . }
		ORDER BY DESC ?v LIMIT 10`
	res, _, err := f.QueryString(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 10 {
		t.Fatalf("rows = %d, want 10", res.Len())
	}
	var prev int64 = 1 << 40
	for _, row := range res.Rows {
		v, err := row["v"].Int()
		if err != nil {
			t.Fatal(err)
		}
		if v > prev {
			t.Fatalf("global order violated: %d after %d", v, prev)
		}
		prev = v
	}
}

func TestEndpointLatencySimulation(t *testing.T) {
	st := geostore.New(geostore.ModeIndexed)
	for _, feat := range geostore.GeneratePointFeatures(10, 1, geom.NewRect(0, 0, 10, 10)) {
		if err := st.AddFeature(feat); err != nil {
			t.Fatal(err)
		}
	}
	ep := NewStoreEndpoint("slow", st, 30*time.Millisecond)
	f := New()
	f.Register(ep)
	start := time.Now()
	_, _, err := f.QueryString(`PREFIX ee: <http://extremeearth.eu/ontology#> SELECT ?f WHERE { ?f a ee:Feature . }`)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("latency not applied: %v", elapsed)
	}
}

func TestParallelFanOut(t *testing.T) {
	// With per-endpoint latency L and parallel fan-out, total time should
	// be ~L, not ~4L.
	f := New()
	for i := 0; i < 4; i++ {
		st := geostore.New(geostore.ModeIndexed)
		for _, feat := range geostore.GeneratePointFeatures(5, int64(i), geom.NewRect(0, 0, 10, 10)) {
			if err := st.AddFeature(feat); err != nil {
				t.Fatal(err)
			}
		}
		f.Register(NewStoreEndpoint(fmt.Sprintf("ep%d", i), st, 50*time.Millisecond))
	}
	start := time.Now()
	_, stats, err := f.QueryString(`PREFIX ee: <http://extremeearth.eu/ontology#> SELECT ?f WHERE { ?f a ee:Feature . }`)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if stats.Queried != 4 {
		t.Fatalf("Queried = %d", stats.Queried)
	}
	if elapsed > 150*time.Millisecond {
		t.Errorf("fan-out appears serialized: %v for 4x50ms endpoints", elapsed)
	}
}

func TestEmptyFederation(t *testing.T) {
	f := New()
	res, stats, err := f.QueryString(`SELECT ?s WHERE { ?s ?p ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 || stats.Queried != 0 {
		t.Errorf("empty federation: rows=%d queried=%d", res.Len(), stats.Queried)
	}
}

func TestMetadataExtent(t *testing.T) {
	ep := buildEndpoint(t, "x", geom.NewRect(100, 200, 300, 400), 50, 9)
	meta := ep.Metadata()
	if !geom.NewRect(100, 200, 300, 400).ContainsRect(meta.Extent) {
		t.Errorf("extent %v outside region", meta.Extent)
	}
	if !meta.Predicates[rdf.GeoAsWKT] {
		t.Error("metadata missing geo:asWKT predicate")
	}
	if meta.TripleCount == 0 {
		t.Error("TripleCount = 0")
	}
}
