package replication

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geostore"
	"repro/internal/rdf"
	"repro/internal/retry"
	"repro/internal/storage"
	"repro/internal/storage/vfs"
)

// Shared scaffolding for the pair tests: a primary and a replica, each
// a full storage.DB + geostore.Store over its own fault-injecting
// filesystem, connected through a real HTTP server so the stream
// crosses an actual socket.

const (
	testToken      = "repl-secret"
	pairNumBatches = 6
	pairBatchSize  = 3
)

func pairTriple(i int) rdf.Triple {
	return rdf.NewTriple(
		rdf.NewIRI(fmt.Sprintf("http://example.org/s%d", i)),
		rdf.NewIRI("http://example.org/p"),
		rdf.NewIntLiteral(int64(i)),
	)
}

func pairBatch(k int) []rdf.Triple {
	out := make([]rdf.Triple, pairBatchSize)
	for j := range out {
		out[j] = pairTriple(k*pairBatchSize + j)
	}
	return out
}

// wantPairPrefix is the canonical triple set of the first k batches.
func wantPairPrefix(k int) []string {
	var out []string
	for i := 0; i < k; i++ {
		for _, t := range pairBatch(i) {
			out = append(out, t.String())
		}
	}
	sort.Strings(out)
	return out
}

func sortedStoreTriples(st *geostore.Store) []string {
	var out []string
	for _, t := range st.RDF().Triples() {
		out = append(out, t.String())
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// node is one side of the pair: durable storage plus the store it
// recovers into, journal attached.
type node struct {
	fsys *vfs.ErrFS
	db   *storage.DB
	st   *geostore.Store
}

func openNode(fsys *vfs.ErrFS) (*node, error) {
	db, err := storage.Open("db", storage.Options{SyncEvery: 1, FS: fsys})
	if err != nil {
		return nil, err
	}
	st := geostore.New(geostore.ModeIndexed)
	if _, err := db.Recover(st.RDF()); err != nil {
		db.Close()
		return nil, err
	}
	st.RDF().SetJournal(db.Log())
	return &node{fsys: fsys, db: db, st: st}, nil
}

func mustOpenNode(t *testing.T, fsys *vfs.ErrFS) *node {
	t.Helper()
	n, err := openNode(fsys)
	if err != nil {
		t.Fatalf("openNode: %v", err)
	}
	return n
}

func (n *node) addBatch(k int) error {
	for _, t := range pairBatch(k) {
		if err := n.st.Add(t.S, t.P, t.O); err != nil {
			return err
		}
	}
	return n.st.RDF().CommitJournal()
}

func (n *node) close() {
	n.db.Close() // error irrelevant: the tests assert on recovered state
}

// fastFeed builds a feed with test-speed intervals.
func fastFeed(db *storage.DB, m *Metrics) *Feed {
	return NewFeed(FeedConfig{
		DB:             db,
		Token:          testToken,
		PollInterval:   time.Millisecond,
		HeartbeatEvery: 2 * time.Millisecond,
		Metrics:        m,
	})
}

// fastReplicaConfig is the test-speed replica configuration; the
// per-frame cursor sync maximizes state-file injection coverage.
func fastReplicaConfig(n *node, url string, m *Metrics) ReplicaConfig {
	return ReplicaConfig{
		PrimaryURL:      url,
		Token:           testToken,
		Store:           n.st,
		DB:              n.db,
		CursorSyncEvery: 1,
		Backoff:         retry.Backoff{Base: time.Millisecond, Cap: 5 * time.Millisecond, Jitter: 0.2},
		Metrics:         m,
	}
}

// swappableServer serves whatever handler is currently installed, so a
// test can restart the "primary" behind a stable URL. The box keeps
// atomic.Value's concrete type constant across swaps.
type handlerBox struct{ h http.Handler }

type swappableServer struct {
	h   atomic.Value // handlerBox
	srv *httptest.Server
}

func newSwappableServer(h http.Handler) *swappableServer {
	s := &swappableServer{}
	s.h.Store(handlerBox{h})
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.h.Load().(handlerBox).h.ServeHTTP(w, r)
	}))
	return s
}

func (s *swappableServer) URL() string         { return s.srv.URL }
func (s *swappableServer) Swap(h http.Handler) { s.h.Store(handlerBox{h}) }
func (s *swappableServer) Close()              { s.srv.Close() }

// waitFor polls cond once per millisecond until it holds or d elapses.
func waitFor(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

// converged reports whether rep has applied exactly the k-batch prefix
// and the stream is caught up (lag zero proven by a heartbeat).
func converged(rep *Replica, n *node, k int) bool {
	s := rep.Status()
	return s.Err == nil && s.Connected && s.LagBytes == 0 &&
		n.st.RDF().Len() == k*pairBatchSize
}
