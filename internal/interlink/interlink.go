// Package interlink implements the geospatial link-discovery system of
// Challenge C3: the JedAI framework extended (per the paper, via
// multi-core meta-blocking [19] and the spatial/temporal Silk extensions
// [21]) to discover topological relations between big geospatial RDF
// sources.
//
// Four strategies share one API and reproduce experiment E8's axes:
//
//   - Naive: the exact cross-product, |A|x|B| geometry comparisons.
//   - Blocked: equigrid blocking; only entities sharing a grid cell are
//     compared (token blocking's spatial analogue).
//   - MetaBlocked: blocked comparisons deduplicated by the
//     least-common-cell rule and executed by a multi-core worker pool,
//     the analogue of multi-core meta-blocking.
//   - Indexed: the R-tree filter-and-refine join shared (via
//     internal/geom's join core) with the geostore's SPARQL
//     spatial-join operator.
//
// All strategies are exact for relations whose extent is bounded by the
// grid (intersects/contains/within and nearby with distance <= cell
// padding): blocking is a complete filter, so recall is 1.0 by
// construction and is verified by the test suite against the naive
// strategy.
package interlink

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/geom"
)

// Entity is a linkable resource with a geometry.
type Entity struct {
	IRI      string
	Geometry geom.Geometry
}

// Relation is a topological relation to discover.
type Relation int

const (
	// RelIntersects links a to b when their geometries intersect.
	RelIntersects Relation = iota
	// RelContains links a to b when a's geometry contains b's.
	RelContains
	// RelWithin links a to b when a's geometry is within b's.
	RelWithin
	// RelNear links a to b when the geometries are within Config.Distance.
	RelNear
)

// String returns the GeoSPARQL-style relation name.
func (r Relation) String() string {
	switch r {
	case RelIntersects:
		return "sfIntersects"
	case RelContains:
		return "sfContains"
	case RelWithin:
		return "sfWithin"
	case RelNear:
		return "near"
	default:
		return fmt.Sprintf("relation(%d)", int(r))
	}
}

// Link is a discovered relation instance.
type Link struct {
	Source, Target string
	Relation       Relation
}

// Stats reports the work a discovery run performed; Comparisons is the E8
// efficiency metric (exact geometry tests executed).
type Stats struct {
	Comparisons int
	Links       int
	Blocks      int
}

// Config tunes discovery.
type Config struct {
	// Relation to discover.
	Relation Relation
	// Distance for RelNear.
	Distance float64
	// CellSize for the blocked strategies; zero picks a heuristic from
	// the data extent (sqrt of average extent per entity).
	CellSize float64
	// Workers for MetaBlocked; zero means GOMAXPROCS.
	Workers int
}

// joinRelation maps the relation onto the shared spatial-join core in
// internal/geom, which the geostore's SPARQL spatial-join operator also
// uses — discovery and query-time joins share one predicate and window
// definition.
func (c Config) joinRelation() geom.JoinRelation {
	switch c.Relation {
	case RelContains:
		return geom.JoinContains
	case RelWithin:
		return geom.JoinWithin
	case RelNear:
		return geom.JoinNearerEq
	default:
		return geom.JoinIntersects
	}
}

func (c Config) pad() float64 {
	if c.Relation == RelNear {
		return c.Distance
	}
	return 0
}

// holds reports whether the relation holds between the two geometries
// (delegating to the shared join core).
func (c Config) holds(a, b geom.Geometry) bool {
	return geom.JoinHolds(c.joinRelation(), a, b, c.Distance)
}

// DiscoverNaive performs the exact cross-product comparison.
func DiscoverNaive(a, b []Entity, cfg Config) ([]Link, Stats) {
	var links []Link
	var st Stats
	for _, ea := range a {
		for _, eb := range b {
			st.Comparisons++
			if cfg.holds(ea.Geometry, eb.Geometry) {
				links = append(links, Link{ea.IRI, eb.IRI, cfg.Relation})
			}
		}
	}
	st.Links = len(links)
	return links, st
}

// DiscoverIndexed is the R-tree index join: bulk-load an R-tree over b,
// probe it with each a's join window, refine candidates exactly. It
// shares geom.IndexJoin with the geostore's SPARQL spatial-join
// operator, so E8's discovery numbers and the query engine's join
// numbers measure the same kernel. Complete for every relation (the
// window is a superset filter), so recall is 1.0 by construction.
func DiscoverIndexed(a, b []Entity, cfg Config) ([]Link, Stats) {
	ga := make([]geom.Geometry, len(a))
	for i := range a {
		ga[i] = a[i].Geometry
	}
	gb := make([]geom.Geometry, len(b))
	for i := range b {
		gb[i] = b[i].Geometry
	}
	var links []Link
	var st Stats
	st.Comparisons = geom.IndexJoin(ga, gb, cfg.joinRelation(), cfg.Distance, func(i, j int) {
		links = append(links, Link{a[i].IRI, b[j].IRI, cfg.Relation})
	})
	st.Links = len(links)
	sortLinks(links)
	return links, st
}

// cell is a grid-cell coordinate.
type cell struct{ x, y int }

// gridIndex assigns each entity to the cells its (padded) bounds overlap.
type gridIndex struct {
	cellSize float64
	cells    map[cell][]int // cell -> entity indexes
}

func buildGrid(entities []Entity, cellSize, pad float64) *gridIndex {
	g := &gridIndex{cellSize: cellSize, cells: make(map[cell][]int)}
	for i, e := range entities {
		b := e.Geometry.Bounds().Expand(pad)
		for _, c := range cellsOf(b, cellSize) {
			g.cells[c] = append(g.cells[c], i)
		}
	}
	return g
}

func cellsOf(b geom.Rect, cellSize float64) []cell {
	x0 := int(math.Floor(b.Min.X / cellSize))
	x1 := int(math.Floor(b.Max.X / cellSize))
	y0 := int(math.Floor(b.Min.Y / cellSize))
	y1 := int(math.Floor(b.Max.Y / cellSize))
	out := make([]cell, 0, (x1-x0+1)*(y1-y0+1))
	for x := x0; x <= x1; x++ {
		for y := y0; y <= y1; y++ {
			out = append(out, cell{x, y})
		}
	}
	return out
}

// chooseCellSize derives a grid resolution from the data: the side of the
// average per-entity bounding square, clamped to produce a usable grid.
func chooseCellSize(a, b []Entity) float64 {
	var ext geom.Rect
	first := true
	n := 0
	for _, set := range [][]Entity{a, b} {
		for _, e := range set {
			bb := e.Geometry.Bounds()
			if first {
				ext = bb
				first = false
			} else {
				ext = ext.Union(bb)
			}
			n++
		}
	}
	if n == 0 || ext.Area() == 0 {
		return 1
	}
	s := math.Sqrt(ext.Area() / float64(n) * 4)
	if s <= 0 {
		return 1
	}
	return s
}

// DiscoverBlocked compares only entity pairs sharing at least one grid
// cell. Pairs spanning multiple shared cells are compared once per shared
// cell (the redundancy meta-blocking removes).
func DiscoverBlocked(a, b []Entity, cfg Config) ([]Link, Stats) {
	cellSize := cfg.CellSize
	if cellSize <= 0 {
		cellSize = chooseCellSize(a, b)
	}
	ga := buildGrid(a, cellSize, cfg.pad())
	gb := buildGrid(b, cellSize, 0)

	var links []Link
	var st Stats
	seen := make(map[[2]int]bool)
	for c, as := range ga.cells {
		bs, ok := gb.cells[c]
		if !ok {
			continue
		}
		st.Blocks++
		for _, ia := range as {
			for _, ib := range bs {
				st.Comparisons++
				key := [2]int{ia, ib}
				if seen[key] {
					continue
				}
				seen[key] = true
				if cfg.holds(a[ia].Geometry, b[ib].Geometry) {
					links = append(links, Link{a[ia].IRI, b[ib].IRI, cfg.Relation})
				}
			}
		}
	}
	st.Links = len(links)
	sortLinks(links)
	return links, st
}

// DiscoverMetaBlocked removes redundant comparisons with the
// least-common-cell rule (a pair is processed only in the lexicographically
// smallest cell both entities share) and fans blocks out over a worker
// pool: the multi-core meta-blocking of [19] adapted to spatial blocks.
func DiscoverMetaBlocked(a, b []Entity, cfg Config) ([]Link, Stats) {
	cellSize := cfg.CellSize
	if cellSize <= 0 {
		cellSize = chooseCellSize(a, b)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pad := cfg.pad()
	ga := buildGrid(a, cellSize, pad)
	gb := buildGrid(b, cellSize, 0)

	// Precompute each entity's padded bounds for the least-common-cell
	// test (it must be recomputable inside workers without maps).
	aBounds := make([]geom.Rect, len(a))
	for i := range a {
		aBounds[i] = a[i].Geometry.Bounds().Expand(pad)
	}
	bBounds := make([]geom.Rect, len(b))
	for i := range b {
		bBounds[i] = b[i].Geometry.Bounds()
	}

	type blockWork struct {
		c  cell
		as []int
		bs []int
	}
	var blocks []blockWork
	for c, as := range ga.cells {
		if bs, ok := gb.cells[c]; ok {
			blocks = append(blocks, blockWork{c, as, bs})
		}
	}

	results := make([][]Link, len(blocks))
	comparisons := make([]int, len(blocks))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for bi := range work {
				blk := blocks[bi]
				var local []Link
				for _, ia := range blk.as {
					for _, ib := range blk.bs {
						// Least-common-cell: process the pair only in the
						// smallest shared cell of the two bound boxes.
						if !isLeastCommonCell(blk.c, aBounds[ia], bBounds[ib], cellSize) {
							continue
						}
						comparisons[bi]++
						if cfg.holds(a[ia].Geometry, b[ib].Geometry) {
							local = append(local, Link{a[ia].IRI, b[ib].IRI, cfg.Relation})
						}
					}
				}
				results[bi] = local
			}
		}()
	}
	for bi := range blocks {
		work <- bi
	}
	close(work)
	wg.Wait()

	var links []Link
	var st Stats
	st.Blocks = len(blocks)
	for bi := range blocks {
		links = append(links, results[bi]...)
		st.Comparisons += comparisons[bi]
	}
	st.Links = len(links)
	sortLinks(links)
	return links, st
}

// isLeastCommonCell reports whether c is the minimum shared grid cell of
// the two bounds (intersection of their cell ranges), which is the unique
// canonical block for the pair.
func isLeastCommonCell(c cell, ba, bb geom.Rect, cellSize float64) bool {
	least := cell{
		x: maxInt(int(math.Floor(ba.Min.X/cellSize)), int(math.Floor(bb.Min.X/cellSize))),
		y: maxInt(int(math.Floor(ba.Min.Y/cellSize)), int(math.Floor(bb.Min.Y/cellSize))),
	}
	return c == least
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func sortLinks(links []Link) {
	sort.Slice(links, func(i, j int) bool {
		if links[i].Source != links[j].Source {
			return links[i].Source < links[j].Source
		}
		return links[i].Target < links[j].Target
	})
}

// Recall computes |found ∩ truth| / |truth|, the E8 quality metric.
func Recall(found, truth []Link) float64 {
	if len(truth) == 0 {
		return 1
	}
	set := make(map[Link]bool, len(found))
	for _, l := range found {
		set[l] = true
	}
	hit := 0
	for _, l := range truth {
		if set[l] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}
