package retry

import (
	"testing"
	"time"
)

// noJitter pins the jitter draw to the midpoint so delays are exact.
func noJitter() float64 { return 0.5 }

func TestBackoffDoublesToCap(t *testing.T) {
	b := Backoff{Base: 5 * time.Second, Cap: 5 * time.Minute, Jitter: 0.2, Rand: noJitter}
	want := []time.Duration{
		5 * time.Second, 10 * time.Second, 20 * time.Second, 40 * time.Second,
		80 * time.Second, 160 * time.Second, 5 * time.Minute, 5 * time.Minute,
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("attempt %d: Next() = %v, want %v", i, got, w)
		}
	}
	if b.Attempts() != len(want) {
		t.Fatalf("Attempts() = %d, want %d", b.Attempts(), len(want))
	}
}

func TestBackoffReset(t *testing.T) {
	b := Backoff{Base: time.Second, Cap: time.Minute, Rand: noJitter}
	b.Next()
	b.Next()
	b.Reset()
	if got := b.Next(); got != time.Second {
		t.Fatalf("Next() after Reset = %v, want %v", got, time.Second)
	}
	if b.Attempts() != 1 {
		t.Fatalf("Attempts() after Reset+Next = %d, want 1", b.Attempts())
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	for _, r := range []float64{0, 0.25, 0.5, 0.75, 0.999} {
		b := Backoff{Base: 10 * time.Second, Cap: time.Minute, Jitter: 0.2,
			Rand: func() float64 { return r }}
		got := b.Next()
		lo, hi := 8*time.Second, 12*time.Second
		if got < lo || got > hi {
			t.Fatalf("Rand=%v: Next() = %v, want within [%v, %v]", r, got, lo, hi)
		}
	}
}

// TestBackoffJitterSpread checks the jitter actually varies the delay:
// two draws at opposite ends of the window must differ.
func TestBackoffJitterSpread(t *testing.T) {
	low := Backoff{Base: time.Minute, Jitter: 0.2, Rand: func() float64 { return 0 }}
	high := Backoff{Base: time.Minute, Jitter: 0.2, Rand: func() float64 { return 0.999 }}
	if l, h := low.Next(), high.Next(); l >= h {
		t.Fatalf("jitter window collapsed: low draw %v >= high draw %v", l, h)
	}
}

func TestBackoffNoOverflow(t *testing.T) {
	b := Backoff{Base: time.Second, Cap: time.Hour, Rand: noJitter}
	for i := 0; i < 200; i++ {
		if got := b.Next(); got < 0 || got > time.Hour {
			t.Fatalf("attempt %d: Next() = %v out of [0, 1h]", i, got)
		}
	}
	// Without a cap the shift still must not overflow into negatives.
	u := Backoff{Base: time.Second, Rand: noJitter}
	for i := 0; i < 200; i++ {
		if got := u.Next(); got < 0 {
			t.Fatalf("uncapped attempt %d: Next() = %v negative", i, got)
		}
	}
}

func TestBackoffZeroValue(t *testing.T) {
	var b Backoff
	if got := b.Next(); got != 0 {
		t.Fatalf("zero-value Next() = %v, want 0", got)
	}
}
