package geostore

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/rdf"
)

func loadPoints(t *testing.T, s interface{ AddFeature(Feature) error }, n int) []Feature {
	t.Helper()
	feats := GeneratePointFeatures(n, 42, geom.NewRect(0, 0, 1000, 1000))
	for _, f := range feats {
		if err := s.AddFeature(f); err != nil {
			t.Fatal(err)
		}
	}
	return feats
}

func TestAddFeatureTripleShape(t *testing.T) {
	s := New(ModeIndexed)
	f := Feature{
		IRI:      "http://example.org/f1",
		Class:    FeatureClass,
		Geometry: geom.Point{X: 1, Y: 2},
		Props: map[string]rdf.Term{
			"http://example.org/name": rdf.NewLiteral("field one"),
		},
	}
	if err := s.AddFeature(f); err != nil {
		t.Fatal(err)
	}
	// type + hasGeometry + asWKT + prop = 4 triples
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if s.NumGeometries() != 1 {
		t.Fatalf("NumGeometries = %d, want 1", s.NumGeometries())
	}
}

func TestAddRejectsBadWKT(t *testing.T) {
	s := New(ModeIndexed)
	err := s.Add(
		rdf.NewIRI("http://example.org/g"),
		rdf.NewIRI(rdf.GeoAsWKT),
		rdf.NewWKTLiteral("POINT (broken"),
	)
	if err == nil {
		t.Fatal("bad WKT accepted")
	}
}

func TestIndexedMatchesNaive(t *testing.T) {
	naive := New(ModeNaive)
	indexed := New(ModeIndexed)
	feats := GeneratePointFeatures(500, 7, geom.NewRect(0, 0, 1000, 1000))
	for _, f := range feats {
		if err := naive.AddFeature(f); err != nil {
			t.Fatal(err)
		}
		if err := indexed.AddFeature(f); err != nil {
			t.Fatal(err)
		}
	}
	indexed.Build()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		window := RandomWindow(rng, geom.NewRect(0, 0, 1000, 1000), 0.05)
		q := SelectionQuery(window)
		rn, err := naive.QueryString(q)
		if err != nil {
			t.Fatal(err)
		}
		ri, err := indexed.QueryString(q)
		if err != nil {
			t.Fatal(err)
		}
		if rn.Len() != ri.Len() {
			t.Fatalf("trial %d: naive %d rows, indexed %d rows", trial, rn.Len(), ri.Len())
		}
		seen := map[string]bool{}
		for _, row := range rn.Rows {
			seen[row["f"].Value] = true
		}
		for _, row := range ri.Rows {
			if !seen[row["f"].Value] {
				t.Fatalf("indexed returned %s not in naive results", row["f"].Value)
			}
		}
	}
}

func TestPartitionedMatchesSingle(t *testing.T) {
	single := New(ModeIndexed)
	parted := NewPartitioned(4)
	feats := GeneratePointFeatures(400, 11, geom.NewRect(0, 0, 1000, 1000))
	for _, f := range feats {
		if err := single.AddFeature(f); err != nil {
			t.Fatal(err)
		}
		if err := parted.AddFeature(f); err != nil {
			t.Fatal(err)
		}
	}
	single.Build()
	parted.Build()
	if parted.NumPartitions() != 4 {
		t.Fatalf("partitions = %d", parted.NumPartitions())
	}
	if parted.Len() != single.Len() {
		t.Fatalf("partitioned Len = %d, single = %d", parted.Len(), single.Len())
	}
	window := geom.NewRect(200, 200, 600, 600)
	q := SelectionQuery(window)
	rs, err := single.QueryString(q)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := parted.QueryString(q)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != rp.Len() {
		t.Fatalf("single %d rows, partitioned %d rows", rs.Len(), rp.Len())
	}
}

func TestMultiPolygonSelection(t *testing.T) {
	s := New(ModeIndexed)
	feats := GenerateMultiPolygonFeatures(100, 2, 32, 13, geom.NewRect(0, 0, 1000, 1000))
	for _, f := range feats {
		if err := s.AddFeature(f); err != nil {
			t.Fatal(err)
		}
	}
	s.Build()
	res, err := s.QueryString(SelectionQuery(geom.NewRect(0, 0, 1000, 1000)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 100 {
		t.Fatalf("full-extent selection = %d rows, want 100", res.Len())
	}
	// verify vertex complexity knob
	mp := feats[0].Geometry.(geom.MultiPolygon)
	if got := mp.NumVertices(); got != 64 {
		t.Errorf("NumVertices = %d, want 64", got)
	}
}

func TestQueryWithoutSpatialFilter(t *testing.T) {
	s := New(ModeIndexed)
	loadPoints(t, s, 50)
	res, err := s.QueryString(`
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?f WHERE { ?f a ee:Feature . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 50 {
		t.Fatalf("rows = %d, want 50", res.Len())
	}
}

func TestQueryCombinedSpatialAndAttribute(t *testing.T) {
	s := New(ModeIndexed)
	loadPoints(t, s, 300)
	s.Build()
	q := fmt.Sprintf(`
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?f ?v WHERE {
			?f a ee:Feature .
			?f geo:hasGeometry ?g .
			?g geo:asWKT ?wkt .
			?f ee:value ?v .
			FILTER(geof:sfIntersects(?wkt, "%s"^^geo:wktLiteral))
			FILTER(?v < 100)
		}`, geom.NewRect(0, 0, 500, 500).WKT())
	res, err := s.QueryString(q)
	if err != nil {
		t.Fatal(err)
	}
	// validate against naive
	n := New(ModeNaive)
	loadPoints(t, n, 300)
	resN, err := n.QueryString(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != resN.Len() {
		t.Fatalf("indexed %d rows, naive %d rows", res.Len(), resN.Len())
	}
	for _, row := range res.Rows {
		v, err := row["v"].Int()
		if err != nil || v >= 100 {
			t.Errorf("attribute filter leaked: v=%v err=%v", v, err)
		}
	}
}

func TestEmptyWindowSelection(t *testing.T) {
	s := New(ModeIndexed)
	loadPoints(t, s, 100)
	s.Build()
	res, err := s.QueryString(SelectionQuery(geom.NewRect(5000, 5000, 6000, 6000)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("out-of-extent window returned %d rows", res.Len())
	}
}

func TestIncrementalBuild(t *testing.T) {
	s := New(ModeIndexed)
	loadPoints(t, s, 20)
	s.Build()
	// Add more features after building; queries must see them.
	f := Feature{
		IRI:      "http://example.org/late",
		Class:    FeatureClass,
		Geometry: geom.Point{X: 100, Y: 100},
	}
	if err := s.AddFeature(f); err != nil {
		t.Fatal(err)
	}
	res, err := s.QueryString(SelectionQuery(geom.NewRect(99, 99, 101, 101)))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		if row["f"].Value == "http://example.org/late" {
			found = true
		}
	}
	if !found {
		t.Error("feature added after Build not visible to queries")
	}
}

func TestWithinQuery(t *testing.T) {
	s := New(ModeIndexed)
	if err := s.AddFeature(Feature{
		IRI: "http://example.org/in", Class: FeatureClass,
		Geometry: geom.Polygon{Shell: geom.Ring{
			{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 2, Y: 2}, {X: 1, Y: 2}}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddFeature(Feature{
		IRI: "http://example.org/straddle", Class: FeatureClass,
		Geometry: geom.Polygon{Shell: geom.Ring{
			{X: 8, Y: 8}, {X: 12, Y: 8}, {X: 12, Y: 12}, {X: 8, Y: 12}}},
	}); err != nil {
		t.Fatal(err)
	}
	s.Build()
	q := `
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?f WHERE {
			?f geo:hasGeometry ?g .
			?g geo:asWKT ?wkt .
			FILTER(geof:sfWithin(?wkt, "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))"^^geo:wktLiteral))
		}`
	res, err := s.QueryString(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0]["f"].Value != "http://example.org/in" {
		t.Fatalf("within query rows: %v", res.Rows)
	}
}

func TestModeString(t *testing.T) {
	if ModeIndexed.String() != "indexed" || ModeNaive.String() != "naive" {
		t.Error("Mode.String mismatch")
	}
}

func TestSelectionCountsScaleWithWindow(t *testing.T) {
	// Sanity check of the workload generator: a window of a of the extent
	// should select roughly that fraction of uniform points.
	s := New(ModeIndexed)
	loadPoints(t, s, 2000)
	s.Build()
	res, err := s.QueryString(SelectionQuery(geom.NewRect(0, 0, 500, 500))) // quarter of extent
	if err != nil {
		t.Fatal(err)
	}
	got := res.Len()
	if got < 350 || got > 650 {
		t.Errorf("quarter-extent selection = %d of 2000, want ~500", got)
	}
}
