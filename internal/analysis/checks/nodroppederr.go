package checks

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// trackedErrDirs are the packages whose error results carry durability
// meaning: discarding one silently un-acknowledges a write (the exact
// bug class PR 8 patched in snapshot dirsync).
var trackedErrDirs = []string{
	"internal/storage",
	"internal/storage/vfs",
	"internal/rdf",
}

// Nodroppederr flags discarded error results from the storage engine's
// durability surface: vfs.FS / vfs.File operations, rdf.Journal and
// journaled-store methods, and the WAL / snapshot / DB methods of
// internal/storage. A call whose error is neither consumed nor
// explicitly propagated — a bare expression statement, or an assignment
// blanking the error position — is reported. Deferred calls are exempt
// (deferred Close on read paths is idiomatic and cannot propagate), as
// are _test.go files; genuinely intentional discards carry an
// //eevet:ignore marker naming the reason.
var Nodroppederr = &analysis.Analyzer{
	Name: "nodroppederr",
	Doc: "error results from vfs.FS/vfs.File, rdf.Journal, and WAL/snapshot\n" +
		"methods may not be discarded",
	Run: runNodroppederr,
}

func runNodroppederr(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.TestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok || !trackedErrCall(pass, call) {
					return true
				}
				if len(errorResultIndexes(pass.TypesInfo, call)) == 0 {
					return true
				}
				pass.Reportf(call.Pos(), "result of %s is a durability error and is silently discarded", calleeLabel(pass, call))
			case *ast.AssignStmt:
				checkBlankedErr(pass, stmt)
			}
			return true
		})
	}
	return nil
}

// checkBlankedErr reports tracked calls whose error result lands on a
// blank identifier.
func checkBlankedErr(pass *analysis.Pass, stmt *ast.AssignStmt) {
	// Tuple form: lhs... = call().
	if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
		call, ok := stmt.Rhs[0].(*ast.CallExpr)
		if !ok || !trackedErrCall(pass, call) {
			return
		}
		for _, i := range errorResultIndexes(pass.TypesInfo, call) {
			if i < len(stmt.Lhs) && isBlank(stmt.Lhs[i]) {
				pass.Reportf(stmt.Lhs[i].Pos(), "error result of %s assigned to _", calleeLabel(pass, call))
			}
		}
		return
	}
	// 1:1 form: a, b = f(), g().
	for i, rhs := range stmt.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || i >= len(stmt.Lhs) || !isBlank(stmt.Lhs[i]) {
			continue
		}
		if trackedErrCall(pass, call) && len(errorResultIndexes(pass.TypesInfo, call)) > 0 {
			pass.Reportf(stmt.Lhs[i].Pos(), "error result of %s assigned to _", calleeLabel(pass, call))
		}
	}
}

// trackedErrCall reports whether the call's callee is declared in one
// of the durability packages — either directly, or as a method invoked
// through a receiver whose named type lives there (vfs.File.Close is
// spelled io.Closer.Close through embedding, but the handle is still
// the durability surface).
func trackedErrCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	obj := calleeObj(pass.TypesInfo, call)
	if obj == nil {
		return false
	}
	if trackedPkgPath(objPkgPath(obj)) {
		return true
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := pass.TypesInfo.Selections[sel]; ok {
			return trackedPkgPath(namedTypePkgPath(s.Recv()))
		}
	}
	return false
}

func trackedPkgPath(path string) bool {
	for _, dir := range trackedErrDirs {
		if pathHasDir(path, dir) {
			return true
		}
	}
	return false
}

// namedTypePkgPath returns the import path declaring t's named type
// (through one pointer), "" for unnamed types.
func namedTypePkgPath(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path()
}

func calleeLabel(pass *analysis.Pass, call *ast.CallExpr) string {
	if obj := calleeObj(pass.TypesInfo, call); obj != nil {
		return obj.Name()
	}
	return "call"
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
