// Command eevet runs the project's analyzer suite (see
// internal/analysis/checks) over Go packages in this module and reports
// violations of the engine's concurrency, durability, and telemetry
// invariants.
//
// Usage:
//
//	go run ./cmd/eevet [flags] [packages]
//
// Packages default to ./... . Flags:
//
//	-only a,b   run only the named analyzers
//	-list       print the available analyzers and exit
//	-fix        apply suggested fixes in place (vfsonly, ctxthread)
//
// Exit status is 1 when any diagnostic is reported, 2 on load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/checks"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	fix := flag.Bool("fix", false, "apply suggested fixes to the source tree")
	flag.Parse()

	all := checks.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, strings.ReplaceAll(a.Doc, "\n", " "))
		}
		return
	}

	analyzers, err := selectAnalyzers(all, *only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eevet:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "eevet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eevet:", err)
		os.Exit(2)
	}

	var findings []analysis.Finding
	for _, pkg := range pkgs {
		fs, err := analysis.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eevet: %s: %v\n", pkg.PkgPath, err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	sort.SliceStable(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})

	if *fix {
		n, err := analysis.ApplyFixes(pkgs, findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eevet:", err)
			os.Exit(2)
		}
		fmt.Printf("eevet: applied %d fix(es)\n", n)
	}

	for _, f := range findings {
		fmt.Printf("%s: %s: %s\n", f.Position, f.Analyzer, f.Diagnostic.Message)
	}
	if len(findings) > 0 && !*fix {
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -only flag against the suite.
func selectAnalyzers(all []*analysis.Analyzer, only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
