// Package retry provides the shared exponential-backoff policy used by
// eeserve's background loops: the snapshot/compaction loop and the
// replication reconnect loop. It was extracted from the hand-rolled
// backoff in cmd/eeserve so both loops (and their tests) share one
// jitter and capping implementation.
package retry

import (
	"math"
	"math/rand"
	"time"
)

// Backoff computes successive retry delays: Base doubles per attempt up
// to Cap, with a symmetric ±Jitter fraction applied so independent
// retriers do not synchronize. The zero value is usable but degenerate
// (zero delays); callers normally set at least Base and Cap.
//
// A Backoff is not safe for concurrent use; each retry loop owns one.
type Backoff struct {
	// Base is the delay before the first retry.
	Base time.Duration
	// Cap bounds the un-jittered delay; 0 means no bound.
	Cap time.Duration
	// Jitter is the fraction of the delay used as the half-width of the
	// uniform jitter window (0.2 → ±20%). 0 disables jitter.
	Jitter float64
	// Rand supplies uniform values in [0, 1) for the jitter; nil uses
	// math/rand's global source. Tests inject a deterministic function.
	Rand func() float64

	attempt int
}

// Next returns the jittered delay for the next retry and advances the
// attempt counter.
func (b *Backoff) Next() time.Duration {
	// ceiling keeps the doubling (and the jitter applied below, which
	// can add up to Jitter*d on top) clear of int64 overflow even when
	// no Cap is configured.
	const ceiling = time.Duration(math.MaxInt64) / 4
	d := b.Base
	for i := 0; i < b.attempt; i++ {
		if b.Cap > 0 && d >= b.Cap {
			break
		}
		if d >= ceiling {
			d = ceiling
			break
		}
		d *= 2
	}
	if b.Cap > 0 && d > b.Cap {
		d = b.Cap
	}
	if d > ceiling {
		d = ceiling
	}
	b.attempt++
	if b.Jitter > 0 && d > 0 {
		r := rand.Float64
		if b.Rand != nil {
			r = b.Rand
		}
		// Uniform in [-Jitter, +Jitter): the expected delay stays d, so
		// capacity planning reads the configured schedule.
		d += time.Duration((r()*2 - 1) * b.Jitter * float64(d))
		if d < 0 {
			d = 0
		}
	}
	return d
}

// Reset returns the schedule to its first-retry delay. Call it after a
// success so the next failure starts the ramp from Base again.
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempts returns how many delays Next has handed out since the last
// Reset. Loops use it to log "retry #n" without keeping their own count.
func (b *Backoff) Attempts() int { return b.attempt }
