package endpoint

import (
	"sync"
	"testing"
	"time"
)

// bucketTotals loads the histogram counters as plain ints.
func bucketTotals(m *metrics) []uint64 {
	out := make([]uint64, len(m.bucketCounts))
	for i := range m.bucketCounts {
		out[i] = m.bucketCounts[i].Load()
	}
	return out
}

// TestObserveBucketBoundaries pins the histogram's bucket edges:
// latencies exactly on an upper bound land in that bucket (le is
// inclusive, the Prometheus convention), just above it in the next, and
// anything beyond the last bound in +Inf.
func TestObserveBucketBoundaries(t *testing.T) {
	for i, ub := range latencyBuckets {
		exact := time.Duration(ub * float64(time.Second))
		// Durations are integer nanoseconds, so every bucket bound (down
		// to 0.0001s) is exactly representable.
		if exact.Seconds() != ub {
			t.Fatalf("bucket bound %g not representable as a duration", ub)
		}
		var m metrics
		m.observe(exact)
		if got := bucketTotals(&m); got[i] != 1 {
			t.Errorf("observe(%v) landed in %v, want bucket %d (le=%g)", exact, got, i, ub)
		}
		var m2 metrics
		m2.observe(exact + time.Nanosecond)
		want := i + 1
		if got := bucketTotals(&m2); got[want] != 1 {
			t.Errorf("observe(%v+1ns) landed in %v, want bucket %d", exact, got, want)
		}
	}

	var m metrics
	over := time.Duration(latencyBuckets[len(latencyBuckets)-1]*float64(time.Second)) + time.Second
	m.observe(over)
	if got := bucketTotals(&m); got[len(latencyBuckets)] != 1 {
		t.Errorf("observe(%v) landed in %v, want the +Inf bucket", over, got)
	}
	if m.latencySumNs.Load() != uint64(over.Nanoseconds()) {
		t.Errorf("latencySumNs = %d, want %d", m.latencySumNs.Load(), over.Nanoseconds())
	}
}

// TestObserveConcurrent hammers observe from many goroutines (run under
// -race) and checks no samples are lost from the count or the sum.
func TestObserveConcurrent(t *testing.T) {
	const (
		goroutines = 8
		perG       = 1000
		d          = time.Millisecond
	)
	var m metrics
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.observe(d)
			}
		}()
	}
	wg.Wait()
	var total uint64
	for _, c := range bucketTotals(&m) {
		total += c
	}
	if total != goroutines*perG {
		t.Errorf("bucket count total = %d, want %d", total, goroutines*perG)
	}
	if got, want := m.latencySumNs.Load(), uint64(goroutines*perG*d.Nanoseconds()); got != want {
		t.Errorf("latencySumNs = %d, want %d", got, want)
	}
}

// TestCountError checks the per-kind split stays consistent with the
// unlabeled total.
func TestCountError(t *testing.T) {
	var m metrics
	m.countError(errKindParse)
	m.countError(errKindParse)
	m.countError(errKindEval)
	m.countError(errKindSerialize)
	if got := m.errors.Load(); got != 4 {
		t.Errorf("errors = %d, want 4", got)
	}
	if p, e, s := m.errParse.Load(), m.errEval.Load(), m.errSerialize.Load(); p != 2 || e != 1 || s != 1 {
		t.Errorf("kind counters = parse %d, eval %d, serialize %d; want 2, 1, 1", p, e, s)
	}
}
