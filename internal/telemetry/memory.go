package telemetry

// StoreMemory is a point-in-time memory accounting of a store: the
// dictionary, the triple indexes, the geometry index and the caches
// that dominate the process's heap. rdf.Store fills the dictionary and
// index fields; geostore's stores add the spatial fields and, for the
// partitioned flavour, sum their partitions. Exposed as store_memory_*
// gauges on /metrics and verbatim under GET /debug/store.
type StoreMemory struct {
	// DictTerms is the number of interned terms; DictBytes is the total
	// text bytes they hold (value + datatype + language tag), excluding
	// Go header overhead — the comparable, allocator-independent part.
	DictTerms int64 `json:"dict_terms"`
	DictBytes int64 `json:"dict_bytes"`
	// IndexTriples maps index name (spo, pos, osp, pending) to its
	// encoded-triple count; IndexBytes is their summed payload size.
	IndexTriples map[string]int64 `json:"index_triples"`
	IndexBytes   int64            `json:"index_bytes"`
	// DedupEntries is the size of the write-path dedup set (0 while it
	// is lazily unbuilt after a snapshot install).
	DedupEntries int64 `json:"dedup_entries"`

	// Geometries is the number of parsed geometries held by geostore;
	// RTreeNodes/RTreeEntries size the spatial index; PlanCacheEntries
	// counts cached compiled query plans.
	Geometries       int64 `json:"geometries"`
	RTreeNodes       int64 `json:"rtree_nodes"`
	RTreeEntries     int64 `json:"rtree_entries"`
	PlanCacheEntries int64 `json:"plan_cache_entries"`

	// Partitions is the partition count a partitioned store summed over
	// (0 for single stores).
	Partitions int64 `json:"partitions,omitempty"`
}

// Add accumulates o into m (used by partitioned stores to sum their
// partitions).
func (m *StoreMemory) Add(o StoreMemory) {
	m.DictTerms += o.DictTerms
	m.DictBytes += o.DictBytes
	if len(o.IndexTriples) > 0 && m.IndexTriples == nil {
		m.IndexTriples = make(map[string]int64, len(o.IndexTriples))
	}
	for k, v := range o.IndexTriples {
		m.IndexTriples[k] += v
	}
	m.IndexBytes += o.IndexBytes
	m.DedupEntries += o.DedupEntries
	m.Geometries += o.Geometries
	m.RTreeNodes += o.RTreeNodes
	m.RTreeEntries += o.RTreeEntries
	m.PlanCacheEntries += o.PlanCacheEntries
}

// TriplesIndexed returns the summed index triple counts (the spo count
// approximates distinct triples; pos/osp/pending are the overhead
// copies).
func (m *StoreMemory) TriplesIndexed() int64 {
	var n int64
	for _, v := range m.IndexTriples {
		n += v
	}
	return n
}
