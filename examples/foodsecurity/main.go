// Command foodsecurity runs the A1 application blueprint: classify crop
// types from a synthetic Sentinel-2 scene with the C1 deep learning
// model, feed the crop map into the PROMET-style water-balance model at
// 10 m, compare against a crop-agnostic baseline, and publish the fields
// as linked data in the semantic catalogue.
//
// Run: go run ./examples/foodsecurity
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/catalogue"
	"repro/internal/dl"
	"repro/internal/geom"
	"repro/internal/promet"
	"repro/internal/raster"
	"repro/internal/sentinel"
)

func main() {
	log.SetFlags(0)
	fmt.Println("== Food Security TEP (A1): irrigation support ==")

	// Watershed: 1.28 km x 1.28 km at 10 m resolution.
	grid := raster.NewGrid(geom.Point{}, 10, 128, 128)
	truth := sentinel.GenerateLandCover(grid, 18, 21)
	scene := sentinel.GenerateS2Scene(truth, 22)
	fmt.Printf("watershed: %dx%d cells at %.0f m (%d ha)\n",
		grid.Width, grid.Height, grid.CellSize,
		int(grid.Bounds().Area()/10_000))

	// Train the crop/land-cover classifier (C1) on synthetic spectra.
	train := eurosatTrainingSet(8000, 23)
	spec := dl.ModelSpec{Arch: dl.ArchMLP, In: 13, Hidden: 32, Classes: 10, Seed: 23}
	net, _ := dl.SingleWorker{}.Train(spec, train, dl.TrainConfig{
		Epochs: 20, BatchSize: 64, LR: 0.3, Momentum: 0.9, Seed: 23,
	})

	// Classify the scene into the DL-derived crop map.
	cropMap := classifyScene(scene, net)
	acc := raster.Agreement(truth, cropMap)
	fmt.Printf("DL crop map accuracy vs ground truth: %.2f\n", acc)

	// Run the water balance with three crop parameterizations.
	weather := promet.GenerateWeather(150, 24)
	cfg := promet.DefaultConfig()
	ref, err := promet.Run(truth, weather, cfg) // reference: true crops
	if err != nil {
		log.Fatal(err)
	}
	dlRes, err := promet.Run(cropMap, weather, cfg) // DL-derived crops
	if err != nil {
		log.Fatal(err)
	}
	uniformCfg := cfg
	uniformCfg.Params = nil // baseline: crop type unknown
	baseRes, err := promet.Run(truth, weather, uniformCfg)
	if err != nil {
		log.Fatal(err)
	}

	dlErr := promet.CompareByField(truth, dlRes, ref)
	baseErr := promet.CompareByField(truth, baseRes, ref)
	fmt.Printf("per-field water-availability error (mm): DL crop map %.2f vs crop-agnostic baseline %.2f (%d fields)\n",
		dlErr.MeanAbs, baseErr.MeanAbs, baseErr.Fields)
	fmt.Printf("mean irrigation need: %.1f mm/season\n", mean(dlRes.IrrigationNeed.Data))

	// Publish classified fields as linked data (C3/C4).
	cat := catalogue.New()
	published := publishFields(cat, cropMap)
	cat.Build()
	fmt.Printf("published %d crop fields as linked data (%d triples)\n", published, cat.Len())

	res, err := cat.Query(`
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?f ?area WHERE {
			?f a ee:CropField .
			?f ee:areaHa ?area .
			FILTER(?area > 1.0)
		} ORDER BY DESC ?area LIMIT 3`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("largest fields by area:\n%s", res)
}

// eurosatTrainingSet builds a balanced 13-band training set inline (the
// examples avoid importing test-oriented helpers).
func eurosatTrainingSet(n int, seed int64) *dl.Dataset {
	rng := newRand(seed)
	ds := &dl.Dataset{X: dl.NewMatrix(n, 13), Y: make([]int, n), Classes: 10}
	for i := 0; i < n; i++ {
		class := uint8(i % 10)
		copy(ds.X.Row(i), sentinel.SampleS2Pixel(class, rng))
		ds.Y[i] = int(class)
	}
	ds.Shuffle(rng)
	return ds
}

func classifyScene(scene *raster.Image, net *dl.Network) *raster.ClassMap {
	cm := raster.NewClassMap(scene.Grid)
	n := scene.Grid.NumCells()
	x := dl.NewMatrix(1, 13)
	for i := 0; i < n; i++ {
		for b := 0; b < 13; b++ {
			x.Data[b] = scene.Bands[b].Data[i]
		}
		cm.Classes[i] = uint8(net.Predict(x)[0])
	}
	return cm
}

// publishFields registers each coherent 16x16 tile with a dominant crop
// class as one field feature.
func publishFields(cat *catalogue.Catalogue, cm *raster.ClassMap) int {
	const tile = 16
	count := 0
	for ty := 0; ty < cm.Grid.Height; ty += tile {
		for tx := 0; tx < cm.Grid.Width; tx += tile {
			counts := map[uint8]int{}
			for dy := 0; dy < tile && ty+dy < cm.Grid.Height; dy++ {
				for dx := 0; dx < tile && tx+dx < cm.Grid.Width; dx++ {
					counts[cm.At(tx+dx, ty+dy)]++
				}
			}
			var dom uint8
			domN := 0
			total := 0
			for c, n := range counts {
				total += n
				if n > domN {
					dom, domN = c, n
				}
			}
			if float64(domN) < 0.8*float64(total) {
				continue
			}
			x0 := cm.Grid.Origin.X + float64(tx)*cm.Grid.CellSize
			y0 := cm.Grid.Origin.Y + float64(ty)*cm.Grid.CellSize
			side := float64(tile) * cm.Grid.CellSize
			areaHa := float64(total) * cm.Grid.CellSize * cm.Grid.CellSize / 10_000
			id := fmt.Sprintf("t%dx%d", tx, ty)
			if err := cat.AddCropField(id, sentinel.LandCoverName(dom), areaHa,
				geom.NewRect(x0, y0, x0+side, y0+side)); err != nil {
				log.Fatal(err)
			}
			count++
		}
	}
	return count
}

func mean(data []float32) float64 {
	if len(data) == 0 {
		return 0
	}
	var s float64
	for _, v := range data {
		s += float64(v)
	}
	return s / float64(len(data))
}

// newRand returns a seeded PRNG.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
