package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, fsys FS, name, content string) {
	t.Helper()
	f, err := fsys.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(content)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOSAndErrFSAgree drives the same operation script through the real
// filesystem and the in-memory one and compares what each observes, so
// the fault-injection substrate cannot drift from production semantics.
func TestOSAndErrFSAgree(t *testing.T) {
	tmp := t.TempDir()
	for name, fsys := range map[string]FS{"os": OS, "errfs": NewErrFS()} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join(tmp, name, "data")
			if err := fsys.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			p := filepath.Join(dir, "wal-000001.log")
			write(t, fsys, p, "hello world")

			// Seeked read-back.
			f, err := fsys.Open(p)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Seek(6, io.SeekStart); err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(f)
			if err != nil || string(got) != "world" {
				t.Fatalf("seeked read = %q, %v", got, err)
			}
			f.Close()

			// Stat, Glob.
			fi, err := fsys.Stat(p)
			if err != nil || fi.Size() != 11 || fi.IsDir() {
				t.Fatalf("stat = %+v, %v", fi, err)
			}
			if fi, err := fsys.Stat(dir); err != nil || !fi.IsDir() {
				t.Fatalf("dir stat = %+v, %v", fi, err)
			}
			matches, err := fsys.Glob(filepath.Join(dir, "wal-*.log"))
			if err != nil || len(matches) != 1 || matches[0] != p {
				t.Fatalf("glob = %v, %v", matches, err)
			}

			// Truncate via an open handle, then ReadFile.
			f, err = fsys.OpenFile(p, os.O_RDWR, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.Truncate(5); err != nil {
				t.Fatal(err)
			}
			f.Close()
			if b, err := fsys.ReadFile(p); err != nil || string(b) != "hello" {
				t.Fatalf("after truncate = %q, %v", b, err)
			}

			// Rename + dir sync + remove.
			q := filepath.Join(dir, "wal-000002.log")
			if err := fsys.Rename(p, q); err != nil {
				t.Fatal(err)
			}
			if err := fsys.SyncDir(dir); err != nil {
				t.Fatal(err)
			}
			if _, err := fsys.Stat(p); err == nil {
				t.Fatal("old name still present after rename")
			}
			if err := fsys.Remove(q); err != nil {
				t.Fatal(err)
			}
			if _, err := fsys.Stat(q); err == nil {
				t.Fatal("file still present after remove")
			}

			// Lock exclusivity: a second handle cannot lock.
			lk := filepath.Join(dir, "LOCK")
			f1, err := fsys.OpenFile(lk, os.O_RDWR|os.O_CREATE, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if err := f1.Lock(); err != nil {
				t.Fatal(err)
			}
			// The os flock is per-process (re-locking the same file from the
			// same process succeeds), so exclusivity against a second holder
			// is only assertable on errfs.
			if name == "errfs" {
				f2, err := fsys.OpenFile(lk, os.O_RDWR|os.O_CREATE, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				if err := f2.Lock(); err == nil {
					t.Fatal("second Lock succeeded while held")
				}
				f2.Close()
			}
			f1.Close()
		})
	}
}

// TestErrFSPowerCutDiscardsUnsynced is the durability contract: synced
// bytes survive, unsynced bytes vanish, and an unsynced rename rolls
// back to the synced directory state.
func TestErrFSPowerCutDiscardsUnsynced(t *testing.T) {
	fsys := NewErrFS()
	f, err := fsys.OpenFile("a.log", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("durable|"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("volatile"))
	fsys.PowerCut()
	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("stale handle usable after power cut")
	}
	b, err := fsys.ReadFile("a.log")
	if err != nil || string(b) != "durable|" {
		t.Fatalf("after power cut = %q, %v; want synced prefix only", b, err)
	}

	// tmp-write + sync + rename, no dir sync: the crash rolls the
	// namespace back to tmp.
	write(t, fsys, "snap.tmp", "snapshot-bytes")
	if err := fsys.Rename("snap.tmp", "snap.final"); err != nil {
		t.Fatal(err)
	}
	fsys.PowerCut()
	if _, err := fsys.Stat("snap.final"); err == nil {
		t.Fatal("unsynced rename survived the power cut")
	}
	if b, _ := fsys.ReadFile("snap.tmp"); string(b) != "snapshot-bytes" {
		t.Fatalf("tmp content = %q, want synced bytes", b)
	}

	// Same sequence with a dir sync: the rename survives.
	write(t, fsys, "snap2.tmp", "gen2")
	if err := fsys.Rename("snap2.tmp", "snap2.final"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	fsys.PowerCut()
	if b, err := fsys.ReadFile("snap2.final"); err != nil || string(b) != "gen2" {
		t.Fatalf("synced rename lost: %q, %v", b, err)
	}
	if _, err := fsys.Stat("snap2.tmp"); err == nil {
		t.Fatal("old name survived a synced rename")
	}
}

// TestErrFSFaultInjection covers the injector: exact-op targeting, torn
// writes, ENOSPC, and the dead-after-power-cut state.
func TestErrFSFaultInjection(t *testing.T) {
	fsys := NewErrFS()

	// Torn write: 3 of 8 bytes land, then the filesystem dies.
	fsys.SetFault(func(seq int, op Op, path string) error {
		if op == OpWrite {
			return &TornWrite{Keep: 3, Err: ErrPowerCut}
		}
		return nil
	})
	f, err := fsys.OpenFile("t.log", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("12345678"))
	if n != 3 || !errors.Is(err, ErrPowerCut) {
		t.Fatalf("torn write = %d, %v; want 3, power cut", n, err)
	}
	if err := fsys.SyncDir("."); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("op on dead filesystem = %v, want power cut", err)
	}
	fsys.PowerCut()
	if _, err := fsys.Stat("t.log"); err == nil {
		t.Fatal("never-synced file survived the cut")
	}

	// ENOSPC on the second write only.
	fsys.SetFault(func(seq int, op Op, path string) error {
		if op == OpWrite && seq == 2 {
			return ErrNoSpace
		}
		return nil
	})
	f, err = fsys.OpenFile("e.log", os.O_RDWR|os.O_CREATE, 0o644) // seq 0
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("ok")); err != nil { // seq 1
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("boom")); !errors.Is(err, ErrNoSpace) { // seq 2
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	if _, err := f.Write([]byte("fine")); err != nil { // seq 3: not sticky
		t.Fatalf("post-ENOSPC write = %v", err)
	}

	// Op counting: a counting pass reports the injection-point space.
	fsys.SetFault(nil)
	write(t, fsys, "c.log", "x") // create + write + sync
	if got := fsys.Ops(); got != 3 {
		t.Fatalf("ops = %d, want 3", got)
	}
}
