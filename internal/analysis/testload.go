package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// LoadTestdata type-checks one analyzer-fixture package. Fixtures live
// in testdata trees the go tool ignores, laid out x/tools style as
// <testdata>/src/<pkgRel>/*.go; pkgRel doubles as the package's import
// path so path-scoped analyzers (vfsonly on internal/storage, locksafe
// on internal/rdf) exercise the same matching logic they run with in
// the repository. Imports in fixture files — standard library or real
// module packages such as repro/internal/storage/vfs — resolve against
// export data from `go list -export`, invoked from moduleDir.
func LoadTestdata(moduleDir, testdata, pkgRel string) (*Package, error) {
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgRel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: testdata package %s: %v", pkgRel, err)
	}
	fset := token.NewFileSet()
	pkg := &Package{
		PkgPath:   pkgRel,
		Dir:       dir,
		Fset:      fset,
		testFiles: make(map[*token.File]bool),
	}
	imports := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %v", path, err)
		}
		pkg.Files = append(pkg.Files, f)
		if strings.HasSuffix(e.Name(), "_test.go") {
			pkg.testFiles[fset.File(f.Pos())] = true
		}
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[p] = true
			}
		}
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	byPath, err := exportDataFor(moduleDir, imports)
	if err != nil {
		return nil, err
	}
	imp, err := newExportImporter(fset, byPath, nil)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkg.PkgPath, fset, pkg.Files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check testdata %s: %v", pkgRel, err)
	}
	pkg.Types = tpkg
	pkg.TypesInfo = info
	return pkg, nil
}

// exportCache memoizes `go list -export` metadata across fixture loads
// in one test process (every fixture pulls roughly the same stdlib
// slice).
var exportCache struct {
	sync.Mutex
	byDir map[string]map[string]*listPackage
}

// exportDataFor returns go list metadata (with export files) for the
// transitive dependencies of the given import paths.
func exportDataFor(moduleDir string, imports map[string]bool) (map[string]*listPackage, error) {
	exportCache.Lock()
	defer exportCache.Unlock()
	if exportCache.byDir == nil {
		exportCache.byDir = make(map[string]map[string]*listPackage)
	}
	cached := exportCache.byDir[moduleDir]
	if cached == nil {
		cached = make(map[string]*listPackage)
		exportCache.byDir[moduleDir] = cached
	}
	var missing []string
	for p := range imports {
		if p != "unsafe" && cached[p] == nil {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return cached, nil
	}
	sort.Strings(missing)
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=Dir,ImportPath,Name,Export,Standard,ForTest,GoFiles,TestGoFiles,XTestGoFiles,Imports,Module,Error",
		"--",
	}, missing...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(missing, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		cached[lp.ImportPath] = lp
	}
	return cached, nil
}

// parseSource parses one in-memory file (test support).
func parseSource(fset *token.FileSet, name, src string) (*ast.File, error) {
	return parser.ParseFile(fset, name, src, parser.ParseComments)
}
