// Package catalogue implements the semantics-based EO catalogue of
// Challenge C4. A conventional catalogue answers "area + date + mission"
// searches (internal/sentinel.Archive already does); the semantic
// catalogue additionally exposes the knowledge extracted from the
// products as linked data, so users can ask content questions — the
// paper's flagship example: "How many icebergs were embedded in the
// Norske Øer Ice Barrier at its maximum extent in 2017?".
//
// The catalogue stores product metadata and knowledge entities (ice
// barriers, icebergs, crop fields) as GeoSPARQL features in an indexed
// geostore and answers stSPARQL queries over them (experiment E10).
package catalogue

import (
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/geostore"
	"repro/internal/rdf"
	"repro/internal/sentinel"
	"repro/internal/sparql"
)

// Ontology IRIs of the catalogue vocabulary.
const (
	NS               = "http://extremeearth.eu/ontology#"
	ClassProduct     = NS + "Product"
	ClassIceberg     = NS + "Iceberg"
	ClassIceBarrier  = NS + "IceBarrier"
	ClassCropField   = NS + "CropField"
	PropMission      = NS + "mission"
	PropLevel        = NS + "processingLevel"
	PropSensingYear  = NS + "sensingYear"
	PropSensingTime  = NS + "sensingTime"
	PropSizeBytes    = NS + "sizeBytes"
	PropObservedYear = NS + "observedYear"
	PropCropType     = NS + "cropType"
	PropAreaHa       = NS + "areaHa"
)

// Catalogue is the semantic catalogue service.
type Catalogue struct {
	store *geostore.Store
}

// New returns an empty catalogue backed by an indexed geostore.
func New() *Catalogue {
	return &Catalogue{store: geostore.New(geostore.ModeIndexed)}
}

// Store exposes the underlying geospatial RDF store.
func (c *Catalogue) Store() *geostore.Store { return c.store }

// Len returns the triple count.
func (c *Catalogue) Len() int { return c.store.Len() }

// Build finalizes indexes after bulk loading.
func (c *Catalogue) Build() { c.store.Build() }

// AddProduct registers a product's metadata as a semantic feature.
func (c *Catalogue) AddProduct(p sentinel.Product) error {
	return c.store.AddFeature(geostore.Feature{
		IRI:      "http://extremeearth.eu/product/" + p.ID,
		Class:    ClassProduct,
		Geometry: p.Footprint,
		Props: map[string]rdf.Term{
			PropMission:     rdf.NewLiteral(p.Mission.String()),
			PropLevel:       rdf.NewLiteral(p.Level),
			PropSensingYear: rdf.NewIntLiteral(int64(p.SensingTime.Year())),
			PropSensingTime: rdf.NewTypedLiteral(p.SensingTime.Format(time.RFC3339), rdf.XSDDateTime),
			PropSizeBytes:   rdf.NewIntLiteral(p.SizeBytes),
		},
	})
}

// AddIceBarrier registers a named ice barrier with its maximum-extent
// polygon for the given year.
func (c *Catalogue) AddIceBarrier(name string, year int, maxExtent geom.Geometry) error {
	return c.store.AddFeature(geostore.Feature{
		IRI:      "http://extremeearth.eu/barrier/" + name,
		Class:    ClassIceBarrier,
		Geometry: maxExtent,
		Props: map[string]rdf.Term{
			PropObservedYear: rdf.NewIntLiteral(int64(year)),
		},
	})
}

// AddIceberg registers an iceberg observation at a location and year.
func (c *Catalogue) AddIceberg(id string, year int, location geom.Point) error {
	return c.store.AddFeature(geostore.Feature{
		IRI:      "http://extremeearth.eu/iceberg/" + id,
		Class:    ClassIceberg,
		Geometry: location,
		Props: map[string]rdf.Term{
			PropObservedYear: rdf.NewIntLiteral(int64(year)),
		},
	})
}

// AddCropField registers a classified crop field (the A1 knowledge
// product).
func (c *Catalogue) AddCropField(id, cropType string, areaHa float64, footprint geom.Geometry) error {
	return c.store.AddFeature(geostore.Feature{
		IRI:      "http://extremeearth.eu/field/" + id,
		Class:    ClassCropField,
		Geometry: footprint,
		Props: map[string]rdf.Term{
			PropCropType: rdf.NewLiteral(cropType),
			PropAreaHa:   rdf.NewFloatLiteral(areaHa),
		},
	})
}

// Query runs an stSPARQL query against the catalogue.
func (c *Catalogue) Query(q string) (*sparql.Results, error) {
	return c.store.QueryString(q)
}

// IcebergsEmbedded answers the paper's flagship semantic query: the
// number of icebergs observed in the given year whose location lies
// within the named barrier's maximum extent. It is implemented as an
// stSPARQL query so the semantic layer (not bespoke code) does the work.
func (c *Catalogue) IcebergsEmbedded(barrierName string, year int) (int, error) {
	// Fetch the barrier geometry.
	bres, err := c.store.QueryString(fmt.Sprintf(`
		PREFIX ee: <%s>
		SELECT ?wkt WHERE {
			<http://extremeearth.eu/barrier/%s> geo:hasGeometry ?g .
			?g geo:asWKT ?wkt .
		}`, NS, barrierName))
	if err != nil {
		return 0, err
	}
	if bres.Len() == 0 {
		return 0, fmt.Errorf("catalogue: barrier %q not found", barrierName)
	}
	barrierWKT := bres.Rows[0]["wkt"].Value

	res, err := c.store.QueryString(fmt.Sprintf(`
		PREFIX ee: <%s>
		SELECT (COUNT(?berg) AS ?n) WHERE {
			?berg a ee:Iceberg .
			?berg ee:observedYear ?year .
			?berg geo:hasGeometry ?g .
			?g geo:asWKT ?wkt .
			FILTER(?year = %d)
			FILTER(geof:sfWithin(?wkt, "%s"^^geo:wktLiteral))
		}`, NS, year, barrierWKT))
	if err != nil {
		return 0, err
	}
	if res.Len() != 1 {
		return 0, fmt.Errorf("catalogue: COUNT returned %d rows", res.Len())
	}
	n, err := res.Rows[0]["n"].Int()
	return int(n), err
}

// ProductsInYearOverArea counts products sensed in year intersecting the
// window — the conventional catalogue search expressed semantically.
func (c *Catalogue) ProductsInYearOverArea(year int, window geom.Rect) (int, error) {
	res, err := c.store.QueryString(fmt.Sprintf(`
		PREFIX ee: <%s>
		SELECT ?p WHERE {
			?p a ee:Product .
			?p ee:sensingYear ?y .
			?p geo:hasGeometry ?g .
			?g geo:asWKT ?wkt .
			FILTER(?y = %d)
			FILTER(geof:sfIntersects(?wkt, "%s"^^geo:wktLiteral))
		}`, NS, year, window.WKT()))
	if err != nil {
		return 0, err
	}
	return res.Len(), nil
}
