package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// ctxDirs are the layers below the HTTP handler boundary: inside them a
// fresh root context is almost always a bug — it detaches the work from
// the request deadline the endpoint threaded down (PR 5/6 wired ctx
// through morsel dispatch precisely so timeouts stop runaway queries).
var ctxDirs = []string{
	"internal/endpoint",
	"internal/geostore",
	"internal/sparql",
	"internal/rdf",
	"internal/storage",
}

// Ctxthread enforces context threading on the query and load paths:
//
//   - a function that already receives a context.Context may not call
//     context.Background() or context.TODO() — that drops the caller's
//     deadline and request ID (suggested fix: forward the parameter);
//   - elsewhere in the covered packages Background()/TODO() is allowed
//     only in an exported no-ctx compatibility shim that passes it
//     directly to a *Context sibling (geostore.Query wrapping
//     QueryContext), keeping root contexts at API entry points;
//   - an exported *Context function must take context.Context first.
//
// Test files are exempt (tests are their own entry points).
var Ctxthread = &analysis.Analyzer{
	Name: "ctxthread",
	Doc: "query/load entry points accept and forward context.Context; no\n" +
		"context.Background() below the handler layer",
	Run: runCtxthread,
}

func runCtxthread(pass *analysis.Pass) error {
	covered := false
	for _, dir := range ctxDirs {
		if pathHasDir(pass.PkgPath, dir) {
			covered = true
			break
		}
	}
	if !covered {
		return nil
	}
	for _, f := range pass.Files {
		if pass.TestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCtxSignature(pass, fn)
			if fn.Body == nil {
				continue
			}
			ctxParam := contextParamName(pass, fn)
			shim := isCtxShim(pass, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := rootContextCall(pass, call)
				if name == "" {
					return true
				}
				switch {
				case ctxParam != "":
					d := analysis.Diagnostic{
						Pos:     call.Pos(),
						End:     call.End(),
						Message: "context." + name + "() drops the caller's context; forward the " + ctxParam + " parameter",
					}
					d.SuggestedFixes = []analysis.SuggestedFix{{
						Message:   "forward the context parameter",
						TextEdits: []analysis.TextEdit{{Pos: call.Pos(), End: call.End(), NewText: ctxParam}},
					}}
					pass.Report(d)
				case shim && isArgOfContextCall(fn.Body, call):
					// Exported no-ctx wrapper delegating to its *Context
					// sibling: the sanctioned place to mint a root context.
				default:
					pass.Reportf(call.Pos(), "context.%s() below the handler layer: accept a context.Context and forward it", name)
				}
				return true
			})
		}
	}
	return nil
}

// checkCtxSignature reports exported *Context functions whose first
// parameter is not context.Context.
func checkCtxSignature(pass *analysis.Pass, fn *ast.FuncDecl) {
	if !fn.Name.IsExported() || !strings.HasSuffix(fn.Name.Name, "Context") {
		return
	}
	params := fn.Type.Params
	if params != nil && len(params.List) > 0 {
		if t, ok := pass.TypesInfo.Types[params.List[0].Type]; ok && isContextType(t.Type) {
			return
		}
	}
	pass.Reportf(fn.Name.Pos(), "%s is a *Context entry point but does not take context.Context as its first parameter", fn.Name.Name)
}

// contextParamName returns the name of fn's context.Context parameter,
// "" when it has none (or only a blank one).
func contextParamName(pass *analysis.Pass, fn *ast.FuncDecl) string {
	if fn.Type.Params == nil {
		return ""
	}
	for _, field := range fn.Type.Params.List {
		t, ok := pass.TypesInfo.Types[field.Type]
		if !ok || !isContextType(t.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
	}
	return ""
}

// isCtxShim reports whether fn is an exported function without a ctx
// parameter — the only shape allowed to mint a root context, and only
// to hand it straight to a *Context sibling.
func isCtxShim(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	return fn.Name.IsExported() && contextParamName(pass, fn) == ""
}

// isArgOfContextCall reports whether call appears directly as an
// argument of a call to a function or method whose name ends in
// "Context".
func isArgOfContextCall(body *ast.BlockStmt, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		outer, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		name := ""
		switch fun := unparen(outer.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if !strings.HasSuffix(name, "Context") {
			return true
		}
		for _, arg := range outer.Args {
			if unparen(arg) == call {
				found = true
			}
		}
		return !found
	})
	return found
}

// rootContextCall returns "Background" or "TODO" when call is
// context.Background() / context.TODO(), "" otherwise.
func rootContextCall(pass *analysis.Pass, call *ast.CallExpr) string {
	obj := calleeObj(pass.TypesInfo, call)
	if obj == nil || objPkgPath(obj) != "context" {
		return ""
	}
	if obj.Name() == "Background" || obj.Name() == "TODO" {
		return obj.Name()
	}
	return ""
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
