// Package trainingset implements the training-dataset generation tooling
// of Challenge C2: harvesting labelled samples for deep learning from
// cartographic/thematic vector products (the OpenStreetMap-style layers
// the paper proposes to leverage) laid over synthetic Sentinel scenes,
// plus augmentation to enlarge datasets to the millions of samples the
// paper targets (experiment E6).
//
// The pipeline is: procedural vector cartography -> rasterized label map
// -> synthetic scene -> point sampling inside labelled features ->
// (optionally) augmentation.
package trainingset

import (
	"math/rand"
	"sync"

	"repro/internal/dl"
	"repro/internal/geom"
	"repro/internal/raster"
	"repro/internal/sentinel"
)

// VectorLayer is a thematic cartographic layer: features sharing one
// land-cover class (like an OSM landuse= layer).
type VectorLayer struct {
	Name     string
	Class    uint8
	Features []geom.Geometry
}

// GenerateCartography produces a procedural vector map over the extent:
// crop parcels, forest patches, water bodies and a residential block,
// mimicking the thematic products of a national mapping agency.
func GenerateCartography(extent geom.Rect, parcels int, seed int64) []VectorLayer {
	rng := rand.New(rand.NewSource(seed))
	randomSquare := func(size float64) geom.Geometry {
		x := extent.Min.X + rng.Float64()*(extent.Width()-size)
		y := extent.Min.Y + rng.Float64()*(extent.Height()-size)
		return geom.NewRect(x, y, x+size, y+size)
	}
	layers := []VectorLayer{
		{Name: "landuse=farmland", Class: sentinel.ClassAnnualCrop},
		{Name: "landuse=forest", Class: sentinel.ClassForest},
		{Name: "natural=water", Class: sentinel.ClassSeaLake},
		{Name: "landuse=residential", Class: sentinel.ClassResidential},
		{Name: "landuse=meadow", Class: sentinel.ClassPasture},
	}
	parcelSize := extent.Width() / 25
	for i := 0; i < parcels; i++ {
		li := i % len(layers)
		layers[li].Features = append(layers[li].Features, randomSquare(parcelSize*(0.5+rng.Float64())))
	}
	return layers
}

// Rasterize burns the layers into a class map on the grid; later layers
// overwrite earlier ones where features overlap, and unlabelled cells
// default to herbaceous background.
func Rasterize(layers []VectorLayer, grid raster.Grid) *raster.ClassMap {
	cm := raster.NewClassMap(grid)
	for i := range cm.Classes {
		cm.Classes[i] = sentinel.ClassHerbVegetation
	}
	for _, layer := range layers {
		for _, f := range layer.Features {
			b := f.Bounds()
			c0, r0, ok0 := grid.CellAt(b.Min)
			c1, r1, ok1 := grid.CellAt(geom.Point{
				X: min(b.Max.X, grid.Bounds().Max.X-grid.CellSize/2),
				Y: min(b.Max.Y, grid.Bounds().Max.Y-grid.CellSize/2),
			})
			if !ok0 {
				c0, r0 = 0, 0
			}
			if !ok1 {
				c1, r1 = grid.Width-1, grid.Height-1
			}
			for row := r0; row <= r1; row++ {
				for col := c0; col <= c1; col++ {
					if geom.Contains(f, grid.CellCenter(col, row)) {
						cm.Set(col, row, layer.Class)
					}
				}
			}
		}
	}
	return cm
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// HarvestConfig tunes sample extraction.
type HarvestConfig struct {
	// SamplesPerFeature bounds the points drawn inside each feature.
	SamplesPerFeature int
	// Workers parallelizes harvesting across layers' features.
	Workers int
	Seed    int64
}

// Stats reports a harvesting run (the E6 metrics).
type Stats struct {
	Features int
	Samples  int
}

// Harvest extracts labelled 13-band samples: for every feature, sample
// points inside it, read the scene pixel there, and label it with the
// layer class. scene must cover the features' extent.
func Harvest(layers []VectorLayer, scene *raster.Image, cfg HarvestConfig) (*dl.Dataset, Stats) {
	if cfg.SamplesPerFeature < 1 {
		cfg.SamplesPerFeature = 1
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	type job struct {
		f     geom.Geometry
		class uint8
		seed  int64
	}
	var jobs []job
	for li, layer := range layers {
		for fi, f := range layer.Features {
			jobs = append(jobs, job{f, layer.Class, cfg.Seed + int64(li)*1_000_003 + int64(fi)})
		}
	}
	results := make([][]sampleVec, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for i, j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, j job) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = harvestFeature(j.f, j.class, scene, cfg.SamplesPerFeature, j.seed)
		}(i, j)
	}
	wg.Wait()

	var all []sampleVec
	for _, r := range results {
		all = append(all, r...)
	}
	ds := &dl.Dataset{
		X:       dl.NewMatrix(len(all), len(scene.Bands)),
		Y:       make([]int, len(all)),
		Classes: sentinel.NumLandCoverClasses,
	}
	for i, s := range all {
		copy(ds.X.Row(i), s.x)
		ds.Y[i] = int(s.y)
	}
	return ds, Stats{Features: len(jobs), Samples: len(all)}
}

type sampleVec struct {
	x []float32
	y uint8
}

// harvestFeature samples up to n points uniformly inside the feature via
// rejection sampling over its bounding box.
func harvestFeature(f geom.Geometry, class uint8, scene *raster.Image, n int, seed int64) []sampleVec {
	rng := rand.New(rand.NewSource(seed))
	b := f.Bounds()
	var out []sampleVec
	attempts := 0
	for len(out) < n && attempts < n*20 {
		attempts++
		p := geom.Point{
			X: b.Min.X + rng.Float64()*b.Width(),
			Y: b.Min.Y + rng.Float64()*b.Height(),
		}
		if !geom.Contains(f, p) {
			continue
		}
		col, row, ok := scene.Grid.CellAt(p)
		if !ok {
			continue
		}
		out = append(out, sampleVec{x: scene.Pixel(col, row), y: class})
	}
	return out
}

// Augment enlarges a dataset by factor: each sample gains factor-1 noisy
// replicas (Gaussian jitter with the given sigma), the cheap enlargement
// technique C2 proposes for reaching millions of samples from thousands
// of annotations.
func Augment(ds *dl.Dataset, factor int, sigma float32, seed int64) *dl.Dataset {
	if factor < 1 {
		factor = 1
	}
	rng := rand.New(rand.NewSource(seed))
	n := ds.Len() * factor
	out := &dl.Dataset{
		X:       dl.NewMatrix(n, ds.X.Cols),
		Y:       make([]int, n),
		Classes: ds.Classes,
	}
	for i := 0; i < ds.Len(); i++ {
		src := ds.X.Row(i)
		for r := 0; r < factor; r++ {
			dst := out.X.Row(i*factor + r)
			copy(dst, src)
			if r > 0 {
				for k := range dst {
					dst[k] += float32(rng.NormFloat64()) * sigma
					if dst[k] < 0 {
						dst[k] = 0
					}
				}
			}
			out.Y[i*factor+r] = ds.Y[i]
		}
	}
	out.Shuffle(rng)
	return out
}
