package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

var testBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

// TestHistogramBucketBoundaries pins the bucket edges (mirroring the
// endpoint's historical metrics_internal_test): samples exactly on an
// upper bound land in that bucket (le is inclusive), just above it in
// the next, and anything beyond the last bound in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	for i, ub := range testBuckets {
		exact := time.Duration(ub * float64(time.Second))
		// Durations are integer nanoseconds, so every bucket bound (down
		// to 0.0001s) is exactly representable.
		if exact.Seconds() != ub {
			t.Fatalf("bucket bound %g not representable as a duration", ub)
		}
		h := newHistogram(testBuckets, 1e9)
		h.ObserveDuration(exact)
		if got := h.BucketCounts(); got[i] != 1 {
			t.Errorf("ObserveDuration(%v) landed in %v, want bucket %d (le=%g)", exact, got, i, ub)
		}
		h2 := newHistogram(testBuckets, 1e9)
		h2.ObserveDuration(exact + time.Nanosecond)
		if got := h2.BucketCounts(); got[i+1] != 1 {
			t.Errorf("ObserveDuration(%v+1ns) landed in %v, want bucket %d", exact, got, i+1)
		}
	}

	h := newHistogram(testBuckets, 1e9)
	over := time.Duration(testBuckets[len(testBuckets)-1]*float64(time.Second)) + time.Second
	h.ObserveDuration(over)
	if got := h.BucketCounts(); got[len(testBuckets)] != 1 {
		t.Errorf("ObserveDuration(%v) landed in %v, want the +Inf bucket", over, got)
	}
	if got, want := h.Sum(), over.Seconds(); got != want {
		t.Errorf("Sum() = %g, want %g", got, want)
	}
}

// TestValueHistogram checks the integer flavour buckets and sums raw
// values.
func TestValueHistogram(t *testing.T) {
	h := newHistogram([]float64{1, 8, 64}, 1)
	for _, v := range []uint64{1, 2, 8, 9, 1000} {
		h.ObserveValue(v)
	}
	if got := h.BucketCounts(); got[0] != 1 || got[1] != 2 || got[2] != 1 || got[3] != 1 {
		t.Errorf("bucket counts = %v, want [1 2 1 1]", got)
	}
	if got := h.Sum(); got != 1020 {
		t.Errorf("Sum() = %g, want 1020", got)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("Count() = %d, want 5", got)
	}
}

// TestConcurrentMutation hammers a counter, gauge and histogram from
// many goroutines (run under -race) and checks no updates are lost.
func TestConcurrentMutation(t *testing.T) {
	const (
		goroutines = 8
		perG       = 1000
		d          = time.Millisecond
	)
	r := NewRegistry()
	c := r.Counter("lost_updates_total", "Counter under concurrent hammering.")
	g := r.Gauge("water_level", "Gauge under concurrent hammering.")
	h := r.DurationHistogram("op_duration_seconds", "Histogram under concurrent hammering.", testBuckets)

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.ObserveDuration(d)
				// Concurrent scrapes must be safe too.
				if j%100 == 0 {
					var sb strings.Builder
					r.WritePrometheus(&sb)
				}
			}
		}()
	}
	wg.Wait()

	if got := c.Load(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := g.Load(); got != goroutines*perG {
		t.Errorf("gauge = %d, want %d", got, goroutines*perG)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	if got, want := h.Sum(), float64(goroutines*perG)*d.Seconds(); got != want {
		t.Errorf("histogram sum = %g, want %g", got, want)
	}
}

// TestExposition pins the rendered text format: HELP/TYPE lines,
// registration order, label rendering, cumulative buckets, %g float
// spelling and plain-integer gauges.
func TestExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests served.")
	c.Add(3)
	ef := r.CounterFamily("errors_total", "Errors by kind.")
	shared := NewCounter()
	ef.Attach(shared)
	ef.Counter("kind", "parse").Add(2)
	ef.Attach(shared, "kind", "timeout")
	shared.Add(5)
	r.IntGaugeFunc("heap_bytes", "Big integer gauge.", func() int64 { return 1 << 40 })
	r.GaugeFunc("uptime_seconds", "Float gauge.", func() float64 { return 1.5 })
	h := r.DurationHistogram("latency_seconds", "Latency.", []float64{0.1, 1})
	h.ObserveDuration(50 * time.Millisecond)
	h.ObserveDuration(2 * time.Second)
	hf := r.DurationHistogramFamily("op_seconds", "Op durations.", []float64{1})
	hf.Histogram("op", "write").ObserveDuration(500 * time.Millisecond)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	got := sb.String()
	want := `# HELP requests_total Requests served.
# TYPE requests_total counter
requests_total 3
# HELP errors_total Errors by kind.
# TYPE errors_total counter
errors_total 5
errors_total{kind="parse"} 2
errors_total{kind="timeout"} 5
# HELP heap_bytes Big integer gauge.
# TYPE heap_bytes gauge
heap_bytes 1099511627776
# HELP uptime_seconds Float gauge.
# TYPE uptime_seconds gauge
uptime_seconds 1.5
# HELP latency_seconds Latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 1
latency_seconds_bucket{le="+Inf"} 2
latency_seconds_sum 2.05
latency_seconds_count 2
# HELP op_seconds Op durations.
# TYPE op_seconds histogram
op_seconds_bucket{op="write",le="1"} 1
op_seconds_bucket{op="write",le="+Inf"} 1
op_seconds_sum{op="write"} 0.5
op_seconds_count{op="write"} 1
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if findings := LintExposition(got); len(findings) != 0 {
		t.Errorf("lint findings on registry output: %v", findings)
	}
}

// TestSnapshot checks the structured read matches the counters.
func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.").Add(7)
	h := r.DurationHistogram("d_seconds", "D.", []float64{1})
	h.ObserveDuration(2 * time.Second)
	prepared := 0
	r.AddPrepare(func() { prepared++ })

	snap := r.Snapshot()
	if prepared != 1 {
		t.Errorf("prepare hooks ran %d times, want 1", prepared)
	}
	if len(snap.Families) != 2 {
		t.Fatalf("snapshot has %d families, want 2", len(snap.Families))
	}
	if f := snap.Families[0]; f.Name != "a_total" || f.Kind != "counter" || len(f.Series) != 1 || f.Series[0].Value != 7 {
		t.Errorf("counter family snapshot = %+v", f)
	}
	var series []string
	for _, s := range snap.Families[1].Series {
		series = append(series, s.Name+s.Labels)
	}
	want := []string{`d_seconds_bucket{le="1"}`, `d_seconds_bucket{le="+Inf"}`, "d_seconds_sum", "d_seconds_count"}
	for i, w := range want {
		if series[i] != w {
			t.Errorf("histogram series[%d] = %q, want %q", i, series[i], w)
		}
	}
	if sum := snap.Families[1].Series[2].Value; sum != 2 {
		t.Errorf("histogram sum = %g, want 2", sum)
	}
}

// TestDuplicateRegistrationPanics pins the fail-fast behaviour on name
// collisions.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("x_total", "X again.")
}
