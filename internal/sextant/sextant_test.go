package sextant

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/geostore"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

func TestWriteGeoJSONShapes(t *testing.T) {
	layer := Layer{
		Name: "mixed",
		Features: []Feature{
			{ID: "pt", Geometry: geom.Point{X: 1, Y: 2}},
			{ID: "rect", Geometry: geom.NewRect(0, 0, 10, 10)},
			{ID: "line", Geometry: geom.LineString{Points: []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 5}}}},
			{ID: "poly", Geometry: geom.Polygon{
				Shell: geom.Ring{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}},
				Holes: []geom.Ring{{{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 2, Y: 2}}},
			}},
			{ID: "multi", Geometry: geom.MultiPolygon{Polygons: []geom.Polygon{
				{Shell: geom.Ring{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}}},
			}}},
		},
	}
	var buf bytes.Buffer
	if err := WriteGeoJSON(&buf, layer); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc["type"] != "FeatureCollection" {
		t.Errorf("type = %v", doc["type"])
	}
	features := doc["features"].([]any)
	if len(features) != 5 {
		t.Fatalf("features = %d", len(features))
	}
	// Polygon ring must be closed.
	poly := features[3].(map[string]any)["geometry"].(map[string]any)
	rings := poly["coordinates"].([]any)
	if len(rings) != 2 {
		t.Fatalf("polygon rings = %d", len(rings))
	}
	shell := rings[0].([]any)
	first := shell[0].([]any)
	last := shell[len(shell)-1].([]any)
	if first[0] != last[0] || first[1] != last[1] {
		t.Error("polygon shell not closed")
	}
}

func TestLayerFromResults(t *testing.T) {
	st := geostore.New(geostore.ModeIndexed)
	feats := geostore.GeneratePointFeatures(20, 1, geom.NewRect(0, 0, 100, 100))
	for _, f := range feats {
		if err := st.AddFeature(f); err != nil {
			t.Fatal(err)
		}
	}
	st.Build()
	res, err := st.QueryString(`
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?f ?wkt ?v WHERE {
			?f a ee:Feature .
			?f geo:hasGeometry ?g .
			?g geo:asWKT ?wkt .
			?f ee:value ?v .
		}`)
	if err != nil {
		t.Fatal(err)
	}
	layer, skipped := LayerFromResults("features", res, "wkt")
	if skipped != 0 {
		t.Errorf("skipped = %d", skipped)
	}
	if len(layer.Features) != 20 {
		t.Fatalf("features = %d", len(layer.Features))
	}
	f0 := layer.Features[0]
	if f0.ID == "" || f0.Properties["v"] == "" {
		t.Errorf("feature missing id/properties: %+v", f0)
	}
	var buf bytes.Buffer
	if err := WriteGeoJSON(&buf, layer); err != nil {
		t.Fatal(err)
	}
}

func TestLayerFromResultsSkipsBadGeometry(t *testing.T) {
	res := testResults(t)
	layer, skipped := LayerFromResults("x", res, "wkt")
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if len(layer.Features) != 1 {
		t.Errorf("features = %d, want 1", len(layer.Features))
	}
}

func testResults(t *testing.T) *sparql.Results {
	t.Helper()
	return &sparql.Results{
		Vars: []string{"f", "wkt"},
		Rows: []map[string]rdf.Term{
			{"f": rdf.NewIRI("http://x/1"), "wkt": rdf.NewWKTLiteral("POINT (1 2)")},
			{"f": rdf.NewIRI("http://x/2"), "wkt": rdf.NewWKTLiteral("BROKEN")},
		},
	}
}

func TestTimeSlice(t *testing.T) {
	t0 := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	layer := Layer{Features: []Feature{
		{ID: "static", Geometry: geom.Point{}},
		{ID: "early", Geometry: geom.Point{}, Timestamp: t0},
		{ID: "late", Geometry: geom.Point{}, Timestamp: t0.AddDate(1, 0, 0)},
	}}
	slice := layer.TimeSlice(t0.AddDate(0, 6, 0))
	if len(slice.Features) != 2 {
		t.Fatalf("slice features = %d", len(slice.Features))
	}
	for _, f := range slice.Features {
		if f.ID == "late" {
			t.Error("future feature leaked into slice")
		}
	}
}

func TestLayerBounds(t *testing.T) {
	layer := Layer{Features: []Feature{
		{Geometry: geom.Point{X: 0, Y: 0}},
		{Geometry: geom.Point{X: 10, Y: 20}},
	}}
	b, ok := layer.Bounds()
	if !ok || b != geom.NewRect(0, 0, 10, 20) {
		t.Errorf("Bounds = %v, %v", b, ok)
	}
	if _, ok := (Layer{}).Bounds(); ok {
		t.Error("empty layer reported bounds")
	}
}

func TestTimestampedGeoJSON(t *testing.T) {
	ts := time.Date(2017, 7, 1, 12, 0, 0, 0, time.UTC)
	layer := Layer{Name: "bergs", Features: []Feature{
		{ID: "b1", Geometry: geom.Point{X: 1, Y: 1}, Timestamp: ts,
			Properties: map[string]any{"cells": 4}},
	}}
	var buf bytes.Buffer
	if err := WriteGeoJSON(&buf, layer); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("2017-07-01T12:00:00Z")) {
		t.Error("timestamp missing from GeoJSON")
	}
}
