package seaice

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/raster"
	"repro/internal/sentinel"
)

func TestTrainClassifierAccuracy(t *testing.T) {
	_, acc := TrainClassifier(3000, 8, 10, 1)
	if acc < 0.6 {
		t.Fatalf("classifier held-out accuracy = %v, want >= 0.6 "+
			"(6 speckled classes from 2 bands)", acc)
	}
}

func TestClassifySceneAgreesWithTruth(t *testing.T) {
	grid := raster.NewGrid(geom.Point{}, 100, 96, 96) // 100m pixels
	truth := sentinel.GenerateIceChart(grid, 8, 2)
	img := sentinel.GenerateS1Scene(truth, 8, 3)
	clf, _ := TrainClassifier(4000, 8, 10, 4)
	got := ClassifyScene(img, clf)
	acc := raster.Agreement(truth, got)
	if acc < 0.5 {
		t.Fatalf("scene agreement = %v, want >= 0.5", acc)
	}
}

func TestMakeChartAggregation(t *testing.T) {
	grid := raster.NewGrid(geom.Point{}, 100, 100, 100) // 10km x 10km at 100m
	truth := sentinel.GenerateIceChart(grid, 5, 5)
	chart, err := MakeChart(truth, 1000) // 1 km product
	if err != nil {
		t.Fatal(err)
	}
	if chart.Map.Grid.Width != 10 || chart.Map.Grid.Height != 10 {
		t.Fatalf("chart grid = %dx%d", chart.Map.Grid.Width, chart.Map.Grid.Height)
	}
	if chart.Concentration <= 0 || chart.Concentration >= 1 {
		t.Errorf("concentration = %v", chart.Concentration)
	}
	var totalFrac float64
	for _, f := range chart.StageFractions {
		totalFrac += f
	}
	if math.Abs(totalFrac-1) > 1e-9 {
		t.Errorf("stage fractions sum to %v", totalFrac)
	}
	if chart.Icebergs == 0 {
		t.Error("no icebergs detected at source resolution")
	}
}

func TestMakeChartRejectsFinerOutput(t *testing.T) {
	grid := raster.NewGrid(geom.Point{}, 100, 10, 10)
	cm := raster.NewClassMap(grid)
	if _, err := MakeChart(cm, 50); err == nil {
		t.Fatal("finer product resolution accepted")
	}
}

func TestChartConcentrationTracksTruth(t *testing.T) {
	grid := raster.NewGrid(geom.Point{}, 100, 80, 80)
	truth := sentinel.GenerateIceChart(grid, 0, 7)
	chart, err := MakeChart(truth, 400)
	if err != nil {
		t.Fatal(err)
	}
	want := sentinel.IceConcentration(truth)
	if math.Abs(chart.Concentration-want) > 0.1 {
		t.Errorf("chart concentration %v vs truth %v", chart.Concentration, want)
	}
}

func TestIcebergLocations(t *testing.T) {
	grid := raster.NewGrid(geom.Point{X: 1000, Y: 2000}, 100, 50, 50)
	cm := raster.NewClassMap(grid)
	// one 2x2 berg at cells (10..11, 20..21)
	cm.Set(10, 20, sentinel.IceBerg)
	cm.Set(11, 20, sentinel.IceBerg)
	cm.Set(10, 21, sentinel.IceBerg)
	cm.Set(11, 21, sentinel.IceBerg)
	// one single-cell berg
	cm.Set(40, 5, sentinel.IceBerg)

	obs := IcebergLocations(cm)
	if len(obs) != 2 {
		t.Fatalf("bergs = %d", len(obs))
	}
	// find the 4-cell berg and check its centroid
	var big IcebergObs
	for _, o := range obs {
		if o.Cells == 4 {
			big = o
		}
	}
	wantX := 1000 + (10.5+0.5)*100 // centre between cells 10 and 11
	wantY := 2000 + (20.5+0.5)*100
	if math.Abs(big.X-wantX) > 1 || math.Abs(big.Y-wantY) > 1 {
		t.Errorf("centroid = (%v, %v), want (%v, %v)", big.X, big.Y, wantX, wantY)
	}
}

func TestNetClassifierAdapter(t *testing.T) {
	clf, _ := TrainClassifier(1200, 8, 5, 9)
	px := sentinel.SampleS1Pixel(sentinel.IceOpenWater, 8, newRand(10))
	class := clf.ClassifyPixel(px)
	if class >= sentinel.NumIceClasses {
		t.Fatalf("class out of range: %d", class)
	}
}

func TestEndToEndPolarPipeline(t *testing.T) {
	// scene -> classify -> 1km chart with icebergs counted
	grid := raster.NewGrid(geom.Point{}, 100, 64, 64)
	truth := sentinel.GenerateIceChart(grid, 6, 11)
	img := sentinel.GenerateS1Scene(truth, 8, 12)
	clf, _ := TrainClassifier(4000, 8, 10, 13)
	classified := ClassifyScene(img, clf)
	chart, err := MakeChart(classified, 800)
	if err != nil {
		t.Fatal(err)
	}
	trueConc := sentinel.IceConcentration(truth)
	if math.Abs(chart.Concentration-trueConc) > 0.25 {
		t.Errorf("concentration %v vs truth %v", chart.Concentration, trueConc)
	}
}
