package dl

import (
	"math/rand"
	"sort"
	"sync"
)

// Trial is one hyperparameter combination and its result. HOPS provides
// exactly this parallel-experiments service on top of its distributed
// training (Challenge C5); here trials run concurrently on the worker
// pool.
type Trial struct {
	LR       float32
	Hidden   int
	Momentum float32
	// TestAccuracy is the held-out accuracy after training.
	TestAccuracy float64
	Loss         float64
}

// SearchSpace bounds the hyperparameter search.
type SearchSpace struct {
	LRs       []float32
	Hiddens   []int
	Momentums []float32
}

// GridTrials enumerates the full Cartesian product of the space.
func (s SearchSpace) GridTrials() []Trial {
	var out []Trial
	for _, lr := range s.LRs {
		for _, h := range s.Hiddens {
			for _, m := range s.Momentums {
				out = append(out, Trial{LR: lr, Hidden: h, Momentum: m})
			}
		}
	}
	return out
}

// RandomTrials samples n combinations uniformly from the space.
func (s SearchSpace) RandomTrials(n int, seed int64) []Trial {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Trial, n)
	for i := range out {
		out[i] = Trial{
			LR:       s.LRs[rng.Intn(len(s.LRs))],
			Hidden:   s.Hiddens[rng.Intn(len(s.Hiddens))],
			Momentum: s.Momentums[rng.Intn(len(s.Momentums))],
		}
	}
	return out
}

// RunSearch trains every trial on train, evaluates on test, and returns
// trials sorted best-first. parallelism bounds concurrent trials.
func RunSearch(spec ModelSpec, train, test *Dataset, trials []Trial, epochs, parallelism int) []Trial {
	if parallelism < 1 {
		parallelism = 1
	}
	out := make([]Trial, len(trials))
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i, tr := range trials {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, tr Trial) {
			defer wg.Done()
			defer func() { <-sem }()
			s := spec
			s.Hidden = tr.Hidden
			s.Seed = spec.Seed + int64(i)
			// Each trial trains on a private shuffled copy (Shuffle
			// mutates) to stay race-free across parallel trials.
			local := &Dataset{X: train.X.Clone(), Y: append([]int(nil), train.Y...), Classes: train.Classes}
			net, stats := SingleWorker{}.Train(s, local, TrainConfig{
				Epochs: epochs, BatchSize: 64, LR: tr.LR, Momentum: tr.Momentum, Seed: s.Seed,
			})
			tr.TestAccuracy = net.Accuracy(test.X, test.Y)
			tr.Loss = stats.FinalLoss
			out[i] = tr
		}(i, tr)
	}
	wg.Wait()
	sort.SliceStable(out, func(i, j int) bool { return out[i].TestAccuracy > out[j].TestAccuracy })
	return out
}
