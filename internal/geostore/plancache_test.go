package geostore

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

func TestPlanCacheHitsAndInvalidation(t *testing.T) {
	s := New(ModeIndexed)
	loadPoints(t, s, 500)
	s.Build()
	q := sparql.MustParse(SelectionQuery(geom.NewRect(100, 100, 400, 400)))

	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	hits, misses := s.PlanCacheStats()
	if hits != 0 || misses == 0 {
		t.Fatalf("after first query: hits=%d misses=%d, want 0 hits", hits, misses)
	}
	first, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	hits, _ = s.PlanCacheStats()
	if hits == 0 {
		t.Fatal("second identical query did not hit the plan cache")
	}

	// A mutation advances the version: the cached plan must not be
	// reused, and the fresh plan must see the new data.
	f := Feature{
		IRI:      "http://example.org/new",
		Class:    FeatureClass,
		Geometry: geom.Point{X: 200, Y: 200},
		Props:    map[string]rdf.Term{},
	}
	if err := s.AddFeature(f); err != nil {
		t.Fatal(err)
	}
	s.Build()
	after, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Len() != first.Len()+1 {
		t.Fatalf("after insert rows = %d, want %d", after.Len(), first.Len()+1)
	}
}

func TestExplainShowsSeededPlan(t *testing.T) {
	s := New(ModeIndexed)
	loadPoints(t, s, 200)
	s.Build()
	q := sparql.MustParse(SelectionQuery(geom.NewRect(100, 100, 400, 400)))
	text, err := s.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"seed:", "step 1:", "enforced by spatial index"} {
		if !strings.Contains(text, want) {
			t.Errorf("Explain missing %q:\n%s", want, text)
		}
	}
	naive := New(ModeNaive)
	if text, err := naive.Explain(q); err != nil || !strings.Contains(text, "naive") {
		t.Errorf("naive Explain = %q, %v", text, err)
	}
}

func TestPartitionedDistinctAcrossPartitions(t *testing.T) {
	// The same class IRI appears in every partition; DISTINCT must dedup
	// globally after the merge, not just per partition.
	ps := NewPartitioned(4)
	loadPoints(t, ps, 200)
	ps.Build()
	res, err := ps.QueryString(`
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT DISTINCT ?t WHERE { ?f a ?t . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("distinct classes = %d, want 1: %v", res.Len(), res.Rows)
	}
}

func TestPartitionedAggregateMerge(t *testing.T) {
	// COUNT groups must fold across partitions: one global row per
	// GROUP BY key with summed counts, not one row per partition.
	ps := NewPartitioned(4)
	loadPoints(t, ps, 100)
	ps.Build()
	res, err := ps.QueryString(`
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?t (COUNT(*) AS ?n) WHERE { ?f a ?t . } GROUP BY ?t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("grouped rows = %d, want 1: %v", res.Len(), res.Rows)
	}
	if n, err := res.Rows[0]["n"].Int(); err != nil || n != 100 {
		t.Fatalf("count = %v (%v), want 100", res.Rows[0]["n"], err)
	}

	// Ungrouped COUNT folds to a single global row too.
	res, err = ps.QueryString(`SELECT (COUNT(*) AS ?n) WHERE { ?f ?p ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("global rows = %d, want 1: %v", res.Len(), res.Rows)
	}
	if n, err := res.Rows[0]["n"].Int(); err != nil || n != int64(ps.Len()) {
		t.Fatalf("count = %v (%v), want %d", res.Rows[0]["n"], err, ps.Len())
	}
}

func TestPartitionedLimitPushdown(t *testing.T) {
	ps := NewPartitioned(3)
	loadPoints(t, ps, 300)
	ps.Build()
	res, err := ps.QueryString(`
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?f WHERE { ?f a ee:Feature . } LIMIT 7`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 7 {
		t.Fatalf("limited rows = %d, want 7", res.Len())
	}
}
