package sparql

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

func planTestStore() *rdf.Store {
	st := diffStore(11, 50)
	return st
}

func TestPlanMergeJoinStarQuery(t *testing.T) {
	st := planTestStore()
	// Find a value literal that actually occurs, so both patterns have
	// non-empty ranges.
	var val rdf.Term
	st.MatchTerms(rdf.Term{}, rdf.NewIRI("http://example.org/p/value"), rdf.Term{}, func(tr rdf.Triple) bool {
		val = tr.O
		return false
	})
	// Two constant-(P,O) patterns on the same subject: the first scan
	// yields subjects ascending (POS), so the second should merge.
	q := MustParse(`
		SELECT ?a WHERE {
			?a a <http://example.org/Class1> .
			?a <http://example.org/p/value> ` + val.Value + ` .
		}`)
	p, err := CompilePlan(st, q, PlanOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if ex := p.Explain(); !strings.Contains(ex, "merge POS(p,o)") {
		t.Errorf("expected a merge join in plan:\n%s", ex)
	}
	checkEquivalent(t, st, q, "merge star")
}

func TestPlanFilterPushdown(t *testing.T) {
	st := planTestStore()
	q := MustParse(`
		SELECT ?a ?v WHERE {
			?a <http://example.org/p/value> ?v .
			?a <http://example.org/p/link> ?b .
			FILTER(?v > 50)
		}`)
	p, err := CompilePlan(st, q, PlanOpts{})
	if err != nil {
		t.Fatal(err)
	}
	ex := p.Explain()
	if !strings.Contains(ex, "pushed filter") {
		t.Fatalf("expected a pushed filter in plan:\n%s", ex)
	}
	// The filter depends only on ?v, so it must be attached to the value
	// pattern's step, not the last step.
	lines := strings.Split(ex, "\n")
	for i, l := range lines {
		if strings.Contains(l, "pushed filter") {
			if i == 0 || !strings.Contains(lines[i-1], "p/value") {
				t.Errorf("filter not attached to the ?v-binding step:\n%s", ex)
			}
		}
	}
	checkEquivalent(t, st, q, "pushdown")
}

func TestPlanEmptyForAbsentConstant(t *testing.T) {
	st := planTestStore()
	q := MustParse(`SELECT ?a WHERE { ?a a <http://example.org/Missing> . ?a ?p ?o . }`)
	p, err := CompilePlan(st, q, PlanOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Explain(), "empty") {
		t.Errorf("plan for absent constant should be empty:\n%s", p.Explain())
	}
	res, err := p.Execute()
	if err != nil || res.Len() != 0 {
		t.Errorf("res = %v rows, err %v; want 0, nil", res.Len(), err)
	}
}

// TestProjectDoesNotAliasQueryVars is the regression test for the
// SELECT * projection appending into a shared Query's Vars backing
// array.
func TestProjectDoesNotAliasQueryVars(t *testing.T) {
	st := planTestStore()
	backing := make([]string, 1, 8)
	backing = backing[:1]
	backing[0] = "keepme"
	sentinel := backing[:1:8] // spare capacity invites in-place append
	q := &Query{
		Vars: sentinel,
		Star: true,
		Patterns: []rdf.TriplePattern{{
			S: rdf.V("x"),
			P: rdf.T(rdf.NewIRI("http://example.org/p/value")),
			O: rdf.V("v"),
		}},
	}
	for _, eval := range []func(*rdf.Store, *Query) (*Results, error){Eval, EvalLegacy} {
		res, err := eval(st, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Vars) != 3 {
			t.Fatalf("vars = %v, want [keepme x v]", res.Vars)
		}
		if got := backing[:cap(backing)][1]; got != "" {
			t.Errorf("projection scribbled %q into the query's Vars backing array", got)
		}
		if len(q.Vars) != 1 || q.Vars[0] != "keepme" {
			t.Errorf("q.Vars mutated: %v", q.Vars)
		}
	}
}

func TestSortRowsNumericKeys(t *testing.T) {
	rows := []map[string]rdf.Term{
		{"v": rdf.NewIntLiteral(10)},
		{"v": rdf.NewIntLiteral(2)},
		{"v": rdf.NewIntLiteral(33)},
	}
	SortRows(rows, "v", false)
	if rows[0]["v"].Value != "2" || rows[2]["v"].Value != "33" {
		t.Errorf("numeric sort failed: %v", rows)
	}
	SortRows(rows, "v", true)
	if rows[0]["v"].Value != "33" {
		t.Errorf("desc sort failed: %v", rows)
	}
}

func TestRowArenaCopiesAreStable(t *testing.T) {
	a := rdf.NewRowArena(3)
	scratch := rdf.Row{1, 2, 3}
	var rows []rdf.Row
	for i := 0; i < 5000; i++ {
		scratch[0] = rdf.ID(i)
		rows = append(rows, a.Copy(scratch))
	}
	for i, r := range rows {
		if r[0] != rdf.ID(i) || r[1] != 2 || r[2] != 3 {
			t.Fatalf("row %d corrupted: %v", i, r)
		}
	}
}

func TestPlanSeededExecution(t *testing.T) {
	// Seeded evaluation with a sorted seed stream must match filtering
	// the oracle's results to the seeded IDs.
	st := planTestStore()
	q := MustParse(`SELECT ?a ?w WHERE { ?a <http://example.org/p/wkt> ?w . }`)
	oracle, err := EvalLegacy(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Len() == 0 {
		t.Fatal("test store has no geometries")
	}
	// Seed on every other geometry ID.
	keep := map[string]bool{}
	var ids []rdf.ID
	for i, row := range oracle.Rows {
		if i%2 == 0 {
			continue
		}
		id, ok := st.Dict().Lookup(row["w"])
		if !ok {
			t.Fatal("geometry term missing from dictionary")
		}
		ids = append(ids, id)
		keep[row["w"].String()] = true
	}
	p, err := CompilePlan(st, q, PlanOpts{SeedVar: "w", SeedsSorted: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.ExecuteSeeded(p.SeedRows(ids))
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, row := range oracle.Rows {
		if keep[row["w"].String()] {
			want++
		}
	}
	if res.Len() != want {
		t.Fatalf("seeded rows = %d, want %d", res.Len(), want)
	}
	for _, row := range res.Rows {
		if !keep[row["w"].String()] {
			t.Fatalf("row %v outside seed set", row)
		}
	}
}
