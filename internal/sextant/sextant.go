// Package sextant implements the visualization layer of the TELEIOS/LEO
// stack the paper builds on (Nikolaou et al., "Sextant: Visualizing
// time-evolving linked geospatial data" [5]): it renders query results
// and feature sets as GeoJSON FeatureCollections and assembles them into
// named map layers, the exchange format every web map client consumes.
package sextant

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/geom"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// Feature is one map feature: a geometry with properties.
type Feature struct {
	ID         string
	Geometry   geom.Geometry
	Properties map[string]any
	// Timestamp enables time-evolving layers (Sextant's distinguishing
	// capability); zero means static.
	Timestamp time.Time
}

// Layer is a named collection of features.
type Layer struct {
	Name     string
	Features []Feature
}

// Map is a set of layers to render together.
type Map struct {
	Title  string
	Layers []Layer
}

// geoJSONGeometry converts a geometry to its GeoJSON representation.
func geoJSONGeometry(g geom.Geometry) (map[string]any, error) {
	switch gg := g.(type) {
	case geom.Point:
		return map[string]any{
			"type":        "Point",
			"coordinates": []float64{gg.X, gg.Y},
		}, nil
	case geom.Rect:
		return map[string]any{
			"type": "Polygon",
			"coordinates": [][][]float64{{
				{gg.Min.X, gg.Min.Y}, {gg.Max.X, gg.Min.Y},
				{gg.Max.X, gg.Max.Y}, {gg.Min.X, gg.Max.Y},
				{gg.Min.X, gg.Min.Y},
			}},
		}, nil
	case geom.LineString:
		coords := make([][]float64, len(gg.Points))
		for i, p := range gg.Points {
			coords[i] = []float64{p.X, p.Y}
		}
		return map[string]any{"type": "LineString", "coordinates": coords}, nil
	case geom.Polygon:
		return map[string]any{
			"type":        "Polygon",
			"coordinates": polygonCoords(gg),
		}, nil
	case geom.MultiPolygon:
		coords := make([][][][]float64, len(gg.Polygons))
		for i, p := range gg.Polygons {
			coords[i] = polygonCoords(p)
		}
		return map[string]any{"type": "MultiPolygon", "coordinates": coords}, nil
	default:
		return nil, fmt.Errorf("sextant: unsupported geometry %T", g)
	}
}

func polygonCoords(p geom.Polygon) [][][]float64 {
	out := make([][][]float64, 0, 1+len(p.Holes))
	out = append(out, ringCoords(p.Shell))
	for _, h := range p.Holes {
		out = append(out, ringCoords(h))
	}
	return out
}

func ringCoords(r geom.Ring) [][]float64 {
	coords := make([][]float64, 0, len(r)+1)
	for _, p := range r {
		coords = append(coords, []float64{p.X, p.Y})
	}
	if len(r) > 0 {
		coords = append(coords, []float64{r[0].X, r[0].Y}) // close ring
	}
	return coords
}

// featureJSON converts one feature to its GeoJSON object form.
func featureJSON(f Feature) (map[string]any, error) {
	g, err := geoJSONGeometry(f.Geometry)
	if err != nil {
		return nil, err
	}
	props := make(map[string]any, len(f.Properties)+1)
	for k, v := range f.Properties {
		props[k] = v
	}
	if !f.Timestamp.IsZero() {
		props["timestamp"] = f.Timestamp.Format(time.RFC3339)
	}
	fm := map[string]any{
		"type":       "Feature",
		"geometry":   g,
		"properties": props,
	}
	if f.ID != "" {
		fm["id"] = f.ID
	}
	return fm, nil
}

// GeoJSONStreamer writes a GeoJSON FeatureCollection feature-by-feature,
// so serving layers can stream arbitrarily large result sets to an
// io.Writer without materializing the collection in memory.
type GeoJSONStreamer struct {
	w      io.Writer
	n      int
	closed bool
}

// NewGeoJSONStreamer starts a FeatureCollection named name on w. The
// caller must Close it to emit valid JSON.
func NewGeoJSONStreamer(w io.Writer, name string) (*GeoJSONStreamer, error) {
	head, err := json.Marshal(name)
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(w, `{"type":"FeatureCollection","name":%s,"features":[`, head); err != nil {
		return nil, err
	}
	return &GeoJSONStreamer{w: w}, nil
}

// Write appends one feature to the collection.
func (s *GeoJSONStreamer) Write(f Feature) error {
	fm, err := featureJSON(f)
	if err != nil {
		return err
	}
	buf, err := json.Marshal(fm)
	if err != nil {
		return err
	}
	if s.n > 0 {
		if _, err := io.WriteString(s.w, ","); err != nil {
			return err
		}
	}
	s.n++
	_, err = s.w.Write(buf)
	return err
}

// Len returns the number of features written so far.
func (s *GeoJSONStreamer) Len() int { return s.n }

// Close terminates the FeatureCollection. It is idempotent.
func (s *GeoJSONStreamer) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	_, err := io.WriteString(s.w, "]}\n")
	return err
}

// WriteGeoJSON serializes a layer as a GeoJSON FeatureCollection.
func WriteGeoJSON(w io.Writer, layer Layer) error {
	s, err := NewGeoJSONStreamer(w, layer.Name)
	if err != nil {
		return err
	}
	for _, f := range layer.Features {
		if err := s.Write(f); err != nil {
			return err
		}
	}
	return s.Close()
}

// RowFeature converts one result row to a map feature: geomVar names the
// variable holding a WKT literal, every other projected variable becomes
// a property, and the first IRI value becomes the feature ID ("" when the
// row has none). ok is false when the geometry is unbound or unparsable.
func RowFeature(row map[string]rdf.Term, vars []string, geomVar string) (Feature, bool) {
	wkt, ok := row[geomVar]
	if !ok || wkt.Kind != rdf.Literal {
		return Feature{}, false
	}
	g, err := geom.ParseWKT(wkt.Value)
	if err != nil {
		return Feature{}, false
	}
	props := map[string]any{}
	var id string
	for _, v := range vars {
		if v == geomVar {
			continue
		}
		t, bound := row[v]
		if !bound {
			continue
		}
		if t.Kind == rdf.IRI && id == "" {
			id = t.Value
		}
		props[v] = t.Value
	}
	return Feature{ID: id, Geometry: g, Properties: props}, true
}

// LayerFromResults builds a layer from stSPARQL results: geomVar names
// the variable holding WKT literals; every other projected variable
// becomes a feature property. Rows whose geometry variable is unbound or
// unparsable are skipped and counted.
func LayerFromResults(name string, res *sparql.Results, geomVar string) (Layer, int) {
	layer := Layer{Name: name}
	skipped := 0
	for i, row := range res.Rows {
		f, ok := RowFeature(row, res.Vars, geomVar)
		if !ok {
			skipped++
			continue
		}
		if f.ID == "" {
			f.ID = fmt.Sprintf("%s/%d", name, i)
		}
		layer.Features = append(layer.Features, f)
	}
	return layer, skipped
}

// TimeSlice returns the features visible at t: static features plus
// timestamped features with Timestamp <= t (the temporal slider of the
// Sextant UI).
func (l Layer) TimeSlice(t time.Time) Layer {
	out := Layer{Name: l.Name}
	for _, f := range l.Features {
		if f.Timestamp.IsZero() || !f.Timestamp.After(t) {
			out.Features = append(out.Features, f)
		}
	}
	return out
}

// Bounds returns the layer's spatial extent; ok is false for an empty
// layer.
func (l Layer) Bounds() (geom.Rect, bool) {
	if len(l.Features) == 0 {
		return geom.Rect{}, false
	}
	b := l.Features[0].Geometry.Bounds()
	for _, f := range l.Features[1:] {
		b = b.Union(f.Geometry.Bounds())
	}
	return b, true
}
