package hopsfs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/kvstore"
)

func newFS(t *testing.T, opts ...Option) *FS {
	t.Helper()
	// Zero block-access cost keeps unit tests fast; the E11 bench sets it.
	base := []Option{WithBlockStore(NewBlockStore(0))}
	return New(kvstore.New(8), append(base, opts...)...)
}

func TestMkdirCreateReadStat(t *testing.T) {
	fs := newFS(t)
	if err := fs.Mkdir("/data"); err != nil {
		t.Fatal(err)
	}
	content := []byte("sentinel scene bytes")
	if err := fs.Create("/data/scene1", content); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("/data/scene1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("Read = %q", got)
	}
	info, err := fs.Stat("/data/scene1")
	if err != nil {
		t.Fatal(err)
	}
	if info.IsDir || info.Size != int64(len(content)) || info.Name != "scene1" {
		t.Errorf("Stat = %+v", info)
	}
	dir, err := fs.Stat("/data")
	if err != nil {
		t.Fatal(err)
	}
	if !dir.IsDir {
		t.Error("directory not marked IsDir")
	}
}

func TestRootExists(t *testing.T) {
	fs := newFS(t)
	info, err := fs.Stat("/")
	if err != nil {
		t.Fatal(err)
	}
	if !info.IsDir {
		t.Error("root is not a directory")
	}
	names, err := fs.List("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Errorf("fresh root children = %v", names)
	}
}

func TestErrors(t *testing.T) {
	fs := newFS(t)
	if err := fs.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/a/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		err  error
		want error
	}{
		{"mkdir existing", fs.Mkdir("/a"), ErrExists},
		{"create existing", fs.Create("/a/f", nil), ErrExists},
		{"read missing", readErr(fs, "/nope"), ErrNotFound},
		{"read dir", readErr(fs, "/a"), ErrIsDir},
		{"list file", listErr(fs, "/a/f"), ErrNotDir},
		{"mkdir under file", fs.Mkdir("/a/f/sub"), ErrNotDir},
		{"relative path", fs.Mkdir("rel"), ErrInvalidArg},
		{"dotdot path", fs.Mkdir("/a/../b"), ErrInvalidArg},
		{"delete root", fs.Delete("/"), ErrInvalidArg},
		{"missing parent", fs.Create("/missing/f", nil), ErrNotFound},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, c.err, c.want)
		}
	}
}

func readErr(fs *FS, p string) error { _, err := fs.Read(p); return err }
func listErr(fs *FS, p string) error { _, err := fs.List(p); return err }

func TestMkdirAll(t *testing.T) {
	fs := newFS(t)
	if err := fs.MkdirAll("/a/b/c/d"); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat("/a/b/c/d")
	if err != nil {
		t.Fatal(err)
	}
	if !info.IsDir {
		t.Error("leaf not a directory")
	}
	// Idempotent.
	if err := fs.MkdirAll("/a/b/c/d"); err != nil {
		t.Fatal(err)
	}
}

func TestListSorted(t *testing.T) {
	fs := newFS(t)
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"zebra", "alpha", "mid"} {
		if err := fs.Create("/d/"+n, nil); err != nil {
			t.Fatal(err)
		}
	}
	names, err := fs.List("/d")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "zebra"}
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestDelete(t *testing.T) {
	fs := newFS(t)
	if err := fs.MkdirAll("/d/sub"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/d/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("delete non-empty = %v", err)
	}
	if err := fs.Delete("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("/d/sub"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/d"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stat after delete = %v", err)
	}
}

func TestRename(t *testing.T) {
	fs := newFS(t)
	if err := fs.MkdirAll("/src"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/dst"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/src/file", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/src/file", "/dst/renamed"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/src/file"); !errors.Is(err, ErrNotFound) {
		t.Error("old path still present")
	}
	got, err := fs.Read("/dst/renamed")
	if err != nil || string(got) != "payload" {
		t.Errorf("Read after rename = %q, %v", got, err)
	}
	// Rename onto an existing name fails.
	if err := fs.Create("/src/other", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/src/other", "/dst/renamed"); !errors.Is(err, ErrExists) {
		t.Errorf("rename onto existing = %v", err)
	}
}

func TestRenameDirectoryMovesSubtree(t *testing.T) {
	fs := newFS(t)
	if err := fs.MkdirAll("/proj/old"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/proj/old/f", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/proj/old", "/proj/new"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("/proj/new/f"); err != nil {
		t.Errorf("subtree content lost: %v", err)
	}
}

func TestSmallFileInlineLargeFileBlocks(t *testing.T) {
	fs := newFS(t, WithInlineThreshold(64))
	small := bytes.Repeat([]byte("s"), 64)
	large := bytes.Repeat([]byte("L"), 65)
	if err := fs.Create("/small", small); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/large", large); err != nil {
		t.Fatal(err)
	}
	si, _ := fs.Stat("/small")
	li, _ := fs.Stat("/large")
	if si.BlockID != 0 || len(si.Inline) != 64 {
		t.Errorf("small file not inlined: %+v", si)
	}
	if li.BlockID == 0 || li.Inline != nil {
		t.Errorf("large file not in block store: %+v", li)
	}
	if got, _ := fs.Read("/small"); !bytes.Equal(got, small) {
		t.Error("small read mismatch")
	}
	if got, _ := fs.Read("/large"); !bytes.Equal(got, large) {
		t.Error("large read mismatch")
	}
	if fs.Blocks().Len() != 1 {
		t.Errorf("blocks = %d", fs.Blocks().Len())
	}
	// Deleting the large file frees its block.
	if err := fs.Delete("/large"); err != nil {
		t.Fatal(err)
	}
	if fs.Blocks().Len() != 0 {
		t.Errorf("blocks after delete = %d", fs.Blocks().Len())
	}
}

func TestInliningDisabled(t *testing.T) {
	fs := newFS(t, WithInlineThreshold(0))
	if err := fs.Create("/f", []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	info, _ := fs.Stat("/f")
	if info.BlockID == 0 {
		t.Error("inline disabled but data not in block store")
	}
}

func TestConcurrentCreatesInOneDirectory(t *testing.T) {
	// The hot-directory workload: concurrent creates conflict on the ID
	// allocator and dirent rows; retries must make all succeed.
	fs := newFS(t)
	if err := fs.Mkdir("/hot"); err != nil {
		t.Fatal(err)
	}
	const workers, files = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, workers*files)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < files; i++ {
				if err := fs.Create(fmt.Sprintf("/hot/w%d-f%d", w, i), []byte("x")); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("create failed: %v", err)
	}
	names, err := fs.List("/hot")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != workers*files {
		t.Fatalf("created %d files, want %d", len(names), workers*files)
	}
	if fs.KV().Stats().Conflicts == 0 {
		t.Log("note: no conflicts observed (acceptable, timing dependent)")
	}
}

func TestInodeEncodingRoundTrip(t *testing.T) {
	in := Inode{
		ID: 42, ParentID: 7, Name: "file with spaces.dat", IsDir: false,
		Size: 123456, ModTime: time.Unix(1700000000, 12345),
		Inline: []byte{1, 2, 3, 0, 255}, BlockID: 99,
	}
	out := decodeInode(encodeInode(in))
	if out.ID != in.ID || out.ParentID != in.ParentID || out.Name != in.Name ||
		out.Size != in.Size || !out.ModTime.Equal(in.ModTime) ||
		out.BlockID != in.BlockID || !bytes.Equal(out.Inline, in.Inline) {
		t.Fatalf("round trip: %+v -> %+v", in, out)
	}
	dir := Inode{ID: 3, Name: "d", IsDir: true, ModTime: time.Unix(0, 0)}
	if got := decodeInode(encodeInode(dir)); !got.IsDir || got.Inline != nil {
		t.Errorf("dir round trip: %+v", got)
	}
}

func TestDeepPaths(t *testing.T) {
	fs := newFS(t)
	path := ""
	for i := 0; i < 20; i++ {
		path += fmt.Sprintf("/level%d", i)
	}
	if err := fs.MkdirAll(path); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create(path+"/leaf", []byte("deep")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read(path + "/leaf")
	if err != nil || string(got) != "deep" {
		t.Errorf("deep read = %q, %v", got, err)
	}
}

func TestDeleteRecursive(t *testing.T) {
	fs := newFS(t)
	if err := fs.MkdirAll("/tree/a/b"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/tree/f1", "/tree/a/f2", "/tree/a/b/f3"} {
		if err := fs.Create(p, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.DeleteRecursive("/tree"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/tree"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stat after recursive delete = %v", err)
	}
	// Root must still list cleanly.
	names, err := fs.List("/")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == "tree" {
			t.Error("deleted subtree still listed")
		}
	}
}

func TestDeleteRecursiveFile(t *testing.T) {
	fs := newFS(t)
	if err := fs.Create("/single", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.DeleteRecursive("/single"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/single"); !errors.Is(err, ErrNotFound) {
		t.Fatal("file survived recursive delete")
	}
}

func TestDeleteRecursiveMissing(t *testing.T) {
	fs := newFS(t)
	if err := fs.DeleteRecursive("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}
