// Package geotriples implements the GeoTriples system of Challenge C3: a
// mapping engine that transforms tabular geospatial data (CSV and
// in-memory records) into RDF graphs following R2RML/RML-style mapping
// rules, re-engineered with a parallel executor (experiment E7).
//
// A Mapping declares how one logical source becomes triples: a subject IRI
// template, an optional rdf:type, predicate-object maps for attribute
// columns, and an optional geometry column that expands into the
// GeoSPARQL geo:hasGeometry/geo:asWKT shape.
package geotriples

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/geom"
	"repro/internal/rdf"
)

// Record is one row of a logical source.
type Record map[string]string

// Source is a logical table: named, with columns and rows.
type Source struct {
	Name    string
	Columns []string
	Records []Record
}

// ParseCSV reads a CSV with a header row into a Source.
func ParseCSV(r io.Reader, name string) (*Source, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("geotriples: reading header of %s: %w", name, err)
	}
	src := &Source{Name: name, Columns: header}
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("geotriples: reading %s: %w", name, err)
		}
		rec := make(Record, len(header))
		for i, col := range header {
			if i < len(row) {
				rec[col] = row[i]
			}
		}
		src.Records = append(src.Records, rec)
	}
	return src, nil
}

// ObjectKind selects how a predicate-object map renders its object.
type ObjectKind int

const (
	// ObjectLiteral emits the column value as a plain literal.
	ObjectLiteral ObjectKind = iota
	// ObjectTyped emits the column value with the configured datatype.
	ObjectTyped
	// ObjectIRI expands the template with the record and emits an IRI.
	ObjectIRI
)

// PredicateObjectMap maps one column (or template) to one predicate.
type PredicateObjectMap struct {
	// Predicate is the predicate IRI.
	Predicate string
	// Kind selects the object rendering.
	Kind ObjectKind
	// Column names the source column (for literal kinds).
	Column string
	// Template is the IRI template (for ObjectIRI), e.g.
	// "http://ex/crop/{crop_code}".
	Template string
	// Datatype is the literal datatype IRI for ObjectTyped.
	Datatype string
}

// Mapping transforms records of one source into triples.
type Mapping struct {
	// SubjectTemplate is an IRI template over columns, e.g.
	// "http://extremeearth.eu/field/{id}".
	SubjectTemplate string
	// Class, when non-empty, emits rdf:type for every subject.
	Class string
	// POMs are the attribute maps.
	POMs []PredicateObjectMap
	// GeometryColumn, when non-empty, names a column holding WKT text and
	// expands into the geo:hasGeometry/geo:asWKT shape. The WKT is
	// validated during transformation.
	GeometryColumn string
}

// Apply transforms one record into its triples.
func (m *Mapping) Apply(rec Record) ([]rdf.Triple, error) {
	subjIRI, err := expandTemplate(m.SubjectTemplate, rec)
	if err != nil {
		return nil, err
	}
	subj := rdf.NewIRI(subjIRI)
	out := make([]rdf.Triple, 0, len(m.POMs)+3)
	if m.Class != "" {
		out = append(out, rdf.NewTriple(subj, rdf.NewIRI(rdf.RDFType), rdf.NewIRI(m.Class)))
	}
	for _, pom := range m.POMs {
		obj, ok, err := pom.object(rec)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // absent column: skip, like R2RML NULL handling
		}
		out = append(out, rdf.NewTriple(subj, rdf.NewIRI(pom.Predicate), obj))
	}
	if m.GeometryColumn != "" {
		wkt, ok := rec[m.GeometryColumn]
		if !ok || strings.TrimSpace(wkt) == "" {
			return nil, fmt.Errorf("geotriples: record lacks geometry column %q", m.GeometryColumn)
		}
		if _, err := geom.ParseWKT(wkt); err != nil {
			return nil, fmt.Errorf("geotriples: %w", err)
		}
		geomNode := rdf.NewIRI(subjIRI + "/geom")
		out = append(out,
			rdf.NewTriple(subj, rdf.NewIRI(rdf.GeoHasGeometry), geomNode),
			rdf.NewTriple(geomNode, rdf.NewIRI(rdf.GeoAsWKT), rdf.NewWKTLiteral(wkt)),
		)
	}
	return out, nil
}

func (pom *PredicateObjectMap) object(rec Record) (rdf.Term, bool, error) {
	switch pom.Kind {
	case ObjectLiteral:
		v, ok := rec[pom.Column]
		if !ok {
			return rdf.Term{}, false, nil
		}
		return rdf.NewLiteral(v), true, nil
	case ObjectTyped:
		v, ok := rec[pom.Column]
		if !ok {
			return rdf.Term{}, false, nil
		}
		return rdf.NewTypedLiteral(v, pom.Datatype), true, nil
	case ObjectIRI:
		iri, err := expandTemplate(pom.Template, rec)
		if err != nil {
			return rdf.Term{}, false, err
		}
		return rdf.NewIRI(iri), true, nil
	default:
		return rdf.Term{}, false, fmt.Errorf("geotriples: unknown object kind %d", pom.Kind)
	}
}

// expandTemplate substitutes {column} references with record values,
// erroring on unknown or empty columns (IRIs must be complete).
func expandTemplate(tpl string, rec Record) (string, error) {
	var b strings.Builder
	for i := 0; i < len(tpl); {
		c := tpl[i]
		if c != '{' {
			b.WriteByte(c)
			i++
			continue
		}
		end := strings.IndexByte(tpl[i:], '}')
		if end < 0 {
			return "", fmt.Errorf("geotriples: unterminated placeholder in template %q", tpl)
		}
		col := tpl[i+1 : i+end]
		v, ok := rec[col]
		if !ok || v == "" {
			return "", fmt.Errorf("geotriples: template %q references missing column %q", tpl, col)
		}
		b.WriteString(iriEscape(v))
		i += end + 1
	}
	return b.String(), nil
}

// iriEscape replaces characters unsafe inside an IRI path segment.
func iriEscape(s string) string {
	r := strings.NewReplacer(" ", "%20", "<", "%3C", ">", "%3E", "\"", "%22", "{", "%7B", "}", "%7D")
	return r.Replace(s)
}

// Stats reports a transformation run.
type Stats struct {
	Records int
	Triples int
	Errors  int
}

// Transform maps every record of src, returning all triples and stats.
// Records that fail to map are counted and skipped, matching GeoTriples'
// row-level error tolerance.
func Transform(src *Source, m *Mapping) ([]rdf.Triple, Stats, error) {
	return TransformParallel(src, m, 1)
}

// TransformParallel is Transform with the given number of worker
// goroutines (experiment E7's scaling axis). Output order follows record
// order regardless of parallelism.
func TransformParallel(src *Source, m *Mapping, workers int) ([]rdf.Triple, Stats, error) {
	if workers < 1 {
		workers = 1
	}
	n := len(src.Records)
	results := make([][]rdf.Triple, n)
	errs := make([]error, n)

	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				results[i], errs[i] = m.Apply(src.Records[i])
			}
		}(lo, hi)
	}
	wg.Wait()

	var stats Stats
	stats.Records = n
	var out []rdf.Triple
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			stats.Errors++
			continue
		}
		out = append(out, results[i]...)
	}
	stats.Triples = len(out)
	return out, stats, nil
}

// LoadInto transforms src and inserts the triples into any consumer with
// an AddTriple method (e.g. *rdf.Store).
func LoadInto(dst interface{ AddTriple(rdf.Triple) }, src *Source, m *Mapping, workers int) (Stats, error) {
	triples, stats, err := TransformParallel(src, m, workers)
	if err != nil {
		return stats, err
	}
	for _, t := range triples {
		dst.AddTriple(t)
	}
	return stats, nil
}

// WriteNTriples serializes triples in N-Triples format.
func WriteNTriples(w io.Writer, triples []rdf.Triple) error {
	for _, t := range triples {
		if _, err := io.WriteString(w, t.String()+"\n"); err != nil {
			return err
		}
	}
	return nil
}
