package rdf

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// This file implements the compiled, slot-based, streaming BGP executor
// that replaced the map-based nested-loop evaluator in query.go (which is
// retained as the reference oracle for differential testing).
//
// A BGPPlan is compiled once per (query, store version): variables are
// resolved to integer slots and constant terms to dictionary IDs, join
// order is chosen from real index cardinalities (range-size probes on the
// SPO/POS/OSP orderings plus per-predicate distinct-value statistics),
// and caller-supplied row predicates (FILTERs) are attached to the
// earliest step that binds their variables. Execution is depth-first and
// push-based: one scratch Row is reused for the whole run, rows stream to
// the emit callback (which can stop the pipeline, e.g. for LIMIT), and
// steps whose probe side shares the stream's sort order run as merge
// joins over a sorted index segment instead of per-row binary searches.

// Row is a slot-addressed solution row: Row[slot] holds the dictionary ID
// bound to that slot, or NoID while the slot is unbound. Rows passed to
// emit callbacks are reused by the executor; consumers that retain them
// must copy (see RowArena).
type Row []ID

// RowArena allocates row copies from large shared blocks, replacing the
// per-row map clones of the legacy evaluator with one bulk allocation per
// few thousand rows. The zero value is not usable; call NewRowArena.
type RowArena struct {
	width int
	block []ID
}

// arenaRows is the number of rows carved from one block.
const arenaRows = 1024

// NewRowArena returns an arena producing rows of the given slot width.
func NewRowArena(width int) *RowArena {
	if width < 1 {
		width = 1
	}
	return &RowArena{width: width}
}

// Copy returns a stable copy of r drawn from the arena.
func (a *RowArena) Copy(r Row) Row {
	if len(a.block)+a.width > cap(a.block) {
		// Previously returned rows keep their old backing block alive;
		// only the arena moves on to a fresh one.
		a.block = make([]ID, 0, a.width*arenaRows)
	}
	n := len(a.block)
	a.block = append(a.block, r...)
	return a.block[n:len(a.block):len(a.block)]
}

// PlanFilter is a row predicate the planner pushes down to the earliest
// step that binds every slot in Slots. Pred must return whether the row
// survives; Label is used by Explain.
type PlanFilter struct {
	Slots []int
	Pred  func(Row) bool
	Label string
}

// PlanProbe is a variable-variable join constraint backed by an external
// index (e.g. the geostore's R-tree): once one of its two slots is bound
// by the pipeline, the planner inserts a probe step that calls
// Candidates to generate the IDs for the other slot, replacing the
// cartesian enumeration a plain filter would require. If pattern steps
// bind both slots before a probe step could run, the probe degrades to a
// pushed filter over Check.
type PlanProbe struct {
	SlotA, SlotB int
	// Candidates streams candidate IDs for the unbound slot given the
	// bound slot's ID; aBound reports whether SlotA is the bound side.
	// Implementations must yield only IDs that satisfy the join predicate
	// exactly (the executor does not re-check), and must stop when yield
	// returns false.
	Candidates func(bound ID, aBound bool, yield func(ID) bool)
	// Check tests the join predicate with both sides bound.
	Check func(a, b ID) bool
	// Label names the join for Explain.
	Label string
}

// BGPOptions tunes PlanBGP for seeded evaluation.
type BGPOptions struct {
	// SeedSlots lists slots pre-bound in every seed row passed to Run.
	SeedSlots []int
	// SortedSlot, when >= 0, promises that seed rows will be sorted
	// ascending by that slot's ID, enabling merge joins against it.
	SortedSlot int
	// Filters are pushed down to the earliest step that binds them;
	// filters fully bound by the seeds run once per seed row.
	Filters []PlanFilter
	// Probes are index-backed variable-variable join constraints; each
	// becomes a candidate-generating step as soon as one side is bound.
	Probes []PlanProbe
}

// refKind classifies one triple-pattern position at a given plan step.
type refKind uint8

const (
	refConst refKind = iota // concrete term, resolved to a dictionary ID
	refBound                // variable bound by an earlier step or seed
	refNew                  // variable first bound at this step
)

type slotRef struct {
	kind refKind
	id   ID  // refConst
	slot int // refBound / refNew
}

// mergeKind selects the merge-join strategy of a step ("none" = index
// nested loop).
type mergeKind uint8

const (
	mergeNone mergeKind = iota
	// mergeS: pattern (?x, p, o) with p, o constant and the stream sorted
	// by ?x. The POS(p,o) segment yields subjects ascending; one cursor
	// advances in lock-step with the stream (a sorted semi-join).
	mergeS
	// mergeOConstS: pattern (s, p, ?x) with s, p constant and the stream
	// sorted by ?x. The SPO(s,p) segment yields objects ascending.
	mergeOConstS
	// mergeONewS: pattern (?new, p, ?x) with p constant and the stream
	// sorted by ?x. The POS(p) segment is sorted (O, S); each stream row
	// consumes its O-group, binding ?new per member.
	mergeONewS
)

// planStep is one compiled join step: a triple pattern, or — when probe
// is non-nil — an index probe that binds one slot from candidates
// generated off another bound slot (the spatial-join step).
type planStep struct {
	tp      TriplePattern
	s, p, o slotRef
	// Intra-pattern repeated-variable constraints (e.g. "?x ?p ?x").
	eqPS, eqOS, eqOP bool
	// filters run immediately after this step binds its slots.
	filters []PlanFilter
	// est is the planner's estimated output rows per upstream row
	// (negative: unknown, e.g. probe steps).
	est float64
	// access describes the chosen access path (for Explain).
	access string

	merge      mergeKind
	mergeSlot  int // stream slot supplying the sorted probe key
	segA, segB ID  // segment range key: POS(p[,o]) or SPO(s,p)

	probe *compiledProbe
}

// compiledProbe is a PlanProbe resolved against the bound set at its
// insertion point: boundSlot feeds Candidates, newSlot receives them.
type compiledProbe struct {
	boundSlot, newSlot int
	aBound             bool
	candidates         func(bound ID, aBound bool, yield func(ID) bool)
}

// BGPPlan is a compiled basic graph pattern ready for streaming
// execution. Compile with Store.PlanBGP; a plan embeds dictionary IDs and
// is only meaningful against the store that compiled it. Plans are
// immutable after compilation and safe for concurrent Run calls.
type BGPPlan struct {
	steps       []planStep
	numSlots    int
	seedFilters []PlanFilter
	// empty marks a pattern whose constant term is absent from the
	// dictionary: the BGP can have no solutions at this store version.
	empty      bool
	sortedSlot int
}

// Empty reports whether the plan was proven unsatisfiable at compile time
// (a constant term is absent from the store's dictionary).
func (p *BGPPlan) Empty() bool { return p.empty }

// NumSlots returns the slot width of rows this plan operates on.
func (p *BGPPlan) NumSlots() int { return p.numSlots }

// --- statistics ---

type predStat struct {
	count     int // triples with this predicate
	distinctS int // distinct subjects under this predicate
	distinctO int // distinct objects under this predicate
}

// execStats summarizes the indexed triples for cardinality estimation.
type execStats struct {
	version   uint64
	total     int
	distinctS int
	distinctP int
	distinctO int
	pred      map[ID]*predStat
}

// queryStats returns up-to-date statistics, rebuilding them (one linear
// pass per index ordering) after mutations.
func (s *Store) queryStats() *execStats {
	s.ensureIndexed()
	s.mu.RLock()
	defer s.mu.RUnlock()
	if st := s.stats.Load(); st != nil && st.version == s.version {
		return st
	}
	st := s.buildStatsLocked()
	s.stats.Store(st)
	return st
}

// buildStatsLocked computes execStats; caller holds at least a read lock
// and pending writes are flushed.
func (s *Store) buildStatsLocked() *execStats {
	st := &execStats{version: s.version, total: len(s.spo), pred: make(map[ID]*predStat)}
	statFor := func(p ID) *predStat {
		ps := st.pred[p]
		if ps == nil {
			ps = &predStat{}
			st.pred[p] = ps
		}
		return ps
	}
	// SPO pass: distinct subjects, and distinct (S,P) pairs per predicate.
	var prevS, prevP ID
	for i, t := range s.spo {
		if i == 0 || t.S != prevS {
			st.distinctS++
		}
		if i == 0 || t.S != prevS || t.P != prevP {
			statFor(t.P).distinctS++
		}
		prevS, prevP = t.S, t.P
	}
	// POS pass: per-predicate counts, distinct predicates, and distinct
	// (P,O) pairs per predicate.
	var prevO ID
	for i, t := range s.pos {
		ps := statFor(t.P)
		ps.count++
		if i == 0 || t.P != prevP {
			st.distinctP++
		}
		if i == 0 || t.P != prevP || t.O != prevO {
			ps.distinctO++
		}
		prevP, prevO = t.P, t.O
	}
	// OSP pass: distinct objects.
	for i, t := range s.osp {
		if i == 0 || t.O != prevO {
			st.distinctO++
		}
		prevO = t.O
	}
	return st
}

// --- range probes ---

// rangeBounds returns the half-open [lo, hi) index range of keys in
// [loKey, hiKey) under the ordering less.
func rangeBounds(idx []EncTriple, less func(a, b EncTriple) bool, loKey, hiKey EncTriple) (int, int) {
	lo := sort.Search(len(idx), func(i int) bool { return !less(idx[i], loKey) })
	hi := sort.Search(len(idx), func(i int) bool { return !less(idx[i], hiKey) })
	return lo, hi
}

// countRangeLocked returns the exact number of indexed triples matching
// the constant positions of a pattern (NoID = wildcard). Every constant
// combination is a prefix of one of the three orderings, so the count is
// two binary searches. Caller holds the read lock with pending flushed.
func (s *Store) countRangeLocked(sub, pred, obj ID) int {
	var lo, hi int
	switch {
	case sub != NoID && pred != NoID && obj != NoID:
		lo, hi = rangeBounds(s.spo, lessSPO, EncTriple{sub, pred, obj}, EncTriple{sub, pred, obj + 1})
	case sub != NoID && pred != NoID:
		lo, hi = rangeBounds(s.spo, lessSPO, EncTriple{S: sub, P: pred}, EncTriple{S: sub, P: pred + 1})
	case sub != NoID && obj != NoID:
		lo, hi = rangeBounds(s.osp, lessOSP, EncTriple{S: sub, O: obj}, EncTriple{S: sub + 1, O: obj})
	case sub != NoID:
		lo, hi = rangeBounds(s.spo, lessSPO, EncTriple{S: sub}, EncTriple{S: sub + 1})
	case pred != NoID && obj != NoID:
		lo, hi = rangeBounds(s.pos, lessPOS, EncTriple{P: pred, O: obj}, EncTriple{P: pred, O: obj + 1})
	case pred != NoID:
		lo, hi = rangeBounds(s.pos, lessPOS, EncTriple{P: pred}, EncTriple{P: pred + 1})
	case obj != NoID:
		lo, hi = rangeBounds(s.osp, lessOSP, EncTriple{O: obj}, EncTriple{O: obj + 1})
	default:
		return len(s.spo)
	}
	return hi - lo
}

// posRangeLocked returns the POS segment for predicate p (and object o
// when o != NoID); spoRangeLocked the SPO segment for (sub, p).
func (s *Store) posRangeLocked(p, o ID) []EncTriple {
	var lo, hi int
	if o != NoID {
		lo, hi = rangeBounds(s.pos, lessPOS, EncTriple{P: p, O: o}, EncTriple{P: p, O: o + 1})
	} else {
		lo, hi = rangeBounds(s.pos, lessPOS, EncTriple{P: p}, EncTriple{P: p + 1})
	}
	return s.pos[lo:hi]
}

func (s *Store) spoRangeLocked(sub, p ID) []EncTriple {
	lo, hi := rangeBounds(s.spo, lessSPO, EncTriple{S: sub, P: p}, EncTriple{S: sub, P: p + 1})
	return s.spo[lo:hi]
}

// --- planning ---

// PlanBGP compiles the patterns into a streaming execution plan. slots
// maps every pattern variable to its slot index; numSlots is the row
// width (callers may reserve extra slots). Join order is greedy by
// estimated cardinality: exact range-size probes over the constant
// positions, divided by distinct-value statistics for join-bound
// positions.
func (s *Store) PlanBGP(patterns []TriplePattern, slots map[string]int, numSlots int, opt BGPOptions) *BGPPlan {
	stats := s.queryStats()
	s.ensureIndexed()
	s.mu.RLock()
	defer s.mu.RUnlock()

	plan := &BGPPlan{numSlots: numSlots, sortedSlot: -1}
	bound := make(map[int]bool, numSlots)
	for _, sl := range opt.SeedSlots {
		bound[sl] = true
	}
	seeded := len(opt.SeedSlots) > 0
	sorted := -1
	if seeded && opt.SortedSlot >= 0 {
		sorted = opt.SortedSlot
	}

	// Filters fully bound by the seeds run once per seed row.
	pending := append([]PlanFilter(nil), opt.Filters...)
	pending = plan.attachReady(pending, bound, func(f PlanFilter) {
		plan.seedFilters = append(plan.seedFilters, f)
	})

	// attachFilter pushes a filter to the latest existing step (or the
	// seed stage when no step exists yet).
	attachFilter := func(f PlanFilter) {
		if len(plan.steps) == 0 {
			plan.seedFilters = append(plan.seedFilters, f)
		} else {
			last := &plan.steps[len(plan.steps)-1]
			last.filters = append(last.filters, f)
		}
	}

	// tryProbes fires every probe whose sides just became reachable: one
	// side bound inserts a candidate-generating probe step (binding the
	// other side), both sides bound degrades to an exact-check filter.
	// Loops because a probe's new binding can enable another probe.
	pendingProbes := append([]PlanProbe(nil), opt.Probes...)
	tryProbes := func() {
		for {
			progressed := false
			rest := pendingProbes[:0]
			for _, pr := range pendingProbes {
				aB, bB := bound[pr.SlotA], bound[pr.SlotB]
				if !aB && !bB {
					rest = append(rest, pr)
					continue
				}
				progressed = true
				if aB && bB {
					pr := pr
					attachFilter(PlanFilter{
						Slots: []int{pr.SlotA, pr.SlotB},
						Pred:  func(row Row) bool { return pr.Check(row[pr.SlotA], row[pr.SlotB]) },
						Label: pr.Label + " (both sides bound: exact check)",
					})
					continue
				}
				cp := &compiledProbe{candidates: pr.Candidates, aBound: aB}
				if aB {
					cp.boundSlot, cp.newSlot = pr.SlotA, pr.SlotB
				} else {
					cp.boundSlot, cp.newSlot = pr.SlotB, pr.SlotA
				}
				bound[cp.newSlot] = true
				step := planStep{probe: cp, est: -1, access: pr.Label}
				pending = plan.attachReady(pending, bound, func(f PlanFilter) {
					step.filters = append(step.filters, f)
				})
				plan.steps = append(plan.steps, step)
			}
			pendingProbes = rest
			if !progressed {
				return
			}
		}
	}
	tryProbes()

	remaining := append([]TriplePattern(nil), patterns...)
	for len(remaining) > 0 {
		best, bestEst := 0, 0.0
		for i, tp := range remaining {
			est := s.estimateLocked(tp, slots, bound, stats)
			if i == 0 || est < bestEst {
				best, bestEst = i, est
			}
		}
		tp := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		if bestEst == 0 {
			// A constant term is absent from the dictionary: no pattern
			// ordering can produce solutions.
			plan.empty = true
			return plan
		}

		step := s.compileStep(tp, slots, bound, sorted)
		step.est = bestEst
		if !seeded && len(plan.steps) == 0 {
			// The first scan of an unseeded run defines the stream order.
			sorted = step.scanSortSlot()
		}
		// Nested-loop extension and merges preserve the outer order, so
		// sortedness persists across subsequent steps.
		for _, r := range []slotRef{step.s, step.p, step.o} {
			if r.kind == refNew {
				bound[r.slot] = true
			}
		}
		pending = plan.attachReady(pending, bound, func(f PlanFilter) {
			step.filters = append(step.filters, f)
		})
		plan.steps = append(plan.steps, step)
		tryProbes()
	}
	// Filters never fully bound (a variable outside the BGP) reject every
	// row, matching the legacy evaluator's unbound-variable semantics.
	// Probes left with neither side bound join the same fate: their
	// variables are outside the BGP, where legacy evaluation errors (and
	// therefore rejects) on every row.
	for _, pr := range pendingProbes {
		attachFilter(PlanFilter{
			Pred:  func(Row) bool { return false },
			Label: pr.Label + " (unbound: rejects all)",
		})
	}
	for _, f := range pending {
		reject := f
		reject.Pred = func(Row) bool { return false }
		attachFilter(reject)
	}
	plan.sortedSlot = sorted
	return plan
}

// attachReady moves filters whose slots are all bound to attach, keeping
// declaration order, and returns the still-pending remainder.
func (p *BGPPlan) attachReady(pending []PlanFilter, bound map[int]bool, attach func(PlanFilter)) []PlanFilter {
	rest := pending[:0]
	for _, f := range pending {
		ready := true
		for _, sl := range f.Slots {
			if !bound[sl] {
				ready = false
				break
			}
		}
		if ready {
			attach(f)
		} else {
			rest = append(rest, f)
		}
	}
	return rest
}

// estimateLocked estimates the rows this pattern yields per upstream row
// given the already-bound slots. The base is an exact range count over
// the pattern's constant positions; each join-bound position divides it
// by the matching distinct-value statistic.
func (s *Store) estimateLocked(tp TriplePattern, slots map[string]int, bound map[int]bool, stats *execStats) float64 {
	var cs, cp, co ID // constants (NoID = not constant)
	var bs, bp, bo bool
	resolve := func(p PatternTerm, c *ID, b *bool) bool {
		if p.IsVar() {
			*b = bound[slots[p.Var]]
			return true
		}
		id, ok := s.dict.Lookup(p.Term)
		if !ok {
			return false
		}
		*c = id
		return true
	}
	if !resolve(tp.S, &cs, &bs) || !resolve(tp.P, &cp, &bp) || !resolve(tp.O, &co, &bo) {
		return 0
	}
	est := float64(s.countRangeLocked(cs, cp, co))
	if est == 0 {
		// An empty range is as prunable as a missing constant, but only
		// at this store version; keep it nonzero-cost so planning
		// continues (the scan simply yields nothing).
		return 0.001
	}
	div := func(n int) {
		if n > 1 {
			est /= float64(n)
		}
	}
	ps := stats.pred[cp] // nil when P is not constant
	if bs {
		if cp != NoID && ps != nil {
			div(ps.distinctS)
		} else {
			div(stats.distinctS)
		}
	}
	if bo {
		if cp != NoID && ps != nil {
			div(ps.distinctO)
		} else {
			div(stats.distinctO)
		}
	}
	if bp {
		div(stats.distinctP)
	}
	if est < 0.001 {
		est = 0.001
	}
	return est
}

// compileStep resolves the pattern's positions against the current bound
// set and selects the access path, including merge joins when the probe
// side shares the stream's sort order.
func (s *Store) compileStep(tp TriplePattern, slots map[string]int, bound map[int]bool, sorted int) planStep {
	step := planStep{tp: tp}
	seen := map[string]int{} // var -> position (0=S 1=P 2=O) within this pattern
	compile := func(p PatternTerm, pos int) slotRef {
		if !p.IsVar() {
			id, _ := s.dict.Lookup(p.Term) // presence checked by estimate
			return slotRef{kind: refConst, id: id}
		}
		sl := slots[p.Var]
		if prev, dup := seen[p.Var]; dup {
			// Repeated variable inside one pattern: the first occurrence
			// binds, later ones constrain.
			switch {
			case pos == 1 && prev == 0:
				step.eqPS = true
			case pos == 2 && prev == 0:
				step.eqOS = true
			case pos == 2 && prev == 1:
				step.eqOP = true
			}
			if bound[sl] {
				return slotRef{kind: refBound, slot: sl}
			}
			// First occurrence already returns refNew; this one only
			// constrains, so treat it as unbound for scanning.
			return slotRef{kind: refNew, slot: sl}
		}
		seen[p.Var] = pos
		if bound[sl] {
			return slotRef{kind: refBound, slot: sl}
		}
		return slotRef{kind: refNew, slot: sl}
	}
	step.s = compile(tp.S, 0)
	step.p = compile(tp.P, 1)
	step.o = compile(tp.O, 2)

	noDup := !step.eqPS && !step.eqOS && !step.eqOP
	if sorted >= 0 && noDup && step.p.kind == refConst {
		switch {
		case step.s.kind == refBound && step.s.slot == sorted &&
			step.o.kind == refConst:
			step.merge, step.mergeSlot = mergeS, sorted
			step.segA, step.segB = step.p.id, step.o.id
			step.access = "merge POS(p,o) on ?" + tp.S.Var
			return step
		case step.o.kind == refBound && step.o.slot == sorted &&
			step.s.kind == refConst:
			step.merge, step.mergeSlot = mergeOConstS, sorted
			step.segA, step.segB = step.s.id, step.p.id
			step.access = "merge SPO(s,p) on ?" + tp.O.Var
			return step
		case step.o.kind == refBound && step.o.slot == sorted &&
			step.s.kind == refNew:
			step.merge, step.mergeSlot = mergeONewS, sorted
			step.segA = step.p.id
			step.access = "merge POS(p) on ?" + tp.O.Var
			return step
		}
	}
	step.access = step.scanAccess()
	return step
}

// scanAccess names the index the nested-loop scan will use (mirrors the
// dispatch in matchLocked, with bound variables acting as constants).
func (st *planStep) scanAccess() string {
	has := func(r slotRef) bool { return r.kind != refNew }
	switch {
	case has(st.s):
		return "scan SPO"
	case has(st.p):
		return "scan POS"
	case has(st.o):
		return "scan OSP"
	default:
		return "scan full"
	}
}

// scanSortSlot returns the slot the step's scan emits in ascending order
// (the primary free variable of its access path), or -1.
func (st *planStep) scanSortSlot() int {
	newSlot := func(r slotRef) int {
		if r.kind == refNew {
			return r.slot
		}
		return -1
	}
	has := func(r slotRef) bool { return r.kind != refNew }
	switch {
	case has(st.s):
		// SPO range on S (and P when bound): primary free position.
		if has(st.p) {
			return newSlot(st.o)
		}
		return newSlot(st.p)
	case has(st.p):
		if has(st.o) {
			return newSlot(st.s) // POS(p,o): subjects ascending
		}
		return newSlot(st.o) // POS(p): objects ascending
	case has(st.o):
		return newSlot(st.s) // OSP(o): subjects ascending
	default:
		return newSlot(st.s) // full SPO scan: subjects ascending
	}
}

// Explain renders one line per step: join order, access path, estimated
// cardinality and pushed filters.
func (p *BGPPlan) Explain() []string {
	if p.empty {
		return []string{"empty: a constant term is absent from the store"}
	}
	var out []string
	for _, f := range p.seedFilters {
		out = append(out, fmt.Sprintf("seed filter: %s", f.Label))
	}
	for i, st := range p.steps {
		var line string
		if st.probe != nil {
			line = fmt.Sprintf("step %d: %s", i+1, st.access)
		} else {
			line = fmt.Sprintf("step %d: %s  [%s, est %.3g]", i+1, strings.TrimSuffix(st.tp.String(), " ."), st.access, st.est)
		}
		out = append(out, line)
		for _, f := range st.filters {
			out = append(out, fmt.Sprintf("  pushed filter: %s", f.Label))
		}
	}
	return out
}

// --- execution ---

// execState holds the per-run mutable state (merge cursors and resolved
// segments), so a BGPPlan itself stays immutable and shareable.
type execState struct {
	s       *Store
	plan    *BGPPlan
	cursors []int
	segs    [][]EncTriple
	emit    func(Row) bool

	// cancel, when non-nil (parallel runs), is polled every
	// parCancelRows pipeline extensions — scans, probes and merge-group
	// bindings, not just final emits — so even a morsel whose explosion
	// is entirely filtered out observes a timeout promptly. aborted
	// reports the poll fired.
	cancel  func() bool
	tick    int
	aborted *atomic.Bool

	// stats, when non-nil, collects per-step runtime counters (EXPLAIN
	// ANALYZE). Every collection site is a nil-check so the default path
	// stays branch-predictable and allocation-free.
	stats *RunStats
}

// pollCancel returns true when the run's cancellation hook fired; the
// budget keeps the poll off the per-extension hot path.
//
//eevet:hotpath
func (st *execState) pollCancel() bool {
	if st.tick--; st.tick > 0 {
		return false
	}
	st.tick = parCancelRows
	if st.cancel() {
		st.aborted.Store(true)
		return true
	}
	return false
}

// Run executes the plan, emitting every solution row to emit until it
// returns false. seeds provides pre-bound rows (nil means one empty
// row); seed rows must be numSlots wide and, when the plan was compiled
// with SortedSlot, sorted ascending by that slot. The emitted Row is
// reused between calls — retain with RowArena.Copy. Run holds the
// store's read lock for its whole duration; emit and filter callbacks
// must not mutate the store.
func (p *BGPPlan) Run(s *Store, seeds []Row, emit func(Row) bool) {
	p.RunProfiled(s, seeds, nil, emit)
}

// RunProfiled is Run with an optional runtime-statistics sink: when stats
// is non-nil (size it with NewRunStats) the executor collects per-step
// rows-in, matches, filter drops and inclusive elapsed time. With a nil
// sink the run is identical to Run.
func (p *BGPPlan) RunProfiled(s *Store, seeds []Row, stats *RunStats, emit func(Row) bool) {
	if p.empty {
		return
	}
	s.ensureIndexed()
	s.mu.RLock()
	defer s.mu.RUnlock()

	st := &execState{s: s, plan: p, emit: emit, stats: stats}
	if st.segs = p.resolveSegsLocked(s); st.segs != nil {
		st.cursors = make([]int, len(p.steps))
	}

	row := make(Row, p.numSlots)
	if seeds == nil {
		// Filters with no slot dependencies (constant or unsatisfiable
		// expressions) attach to the seed stage; apply them to the single
		// empty row too.
		if stats != nil {
			stats.SeedRows++
		}
		for _, f := range p.seedFilters {
			if !f.Pred(row) {
				if stats != nil {
					stats.SeedDrops++
				}
				return
			}
		}
		st.run(0, row)
		return
	}
seedLoop:
	for _, seed := range seeds {
		copy(row, seed)
		if stats != nil {
			stats.SeedRows++
		}
		for _, f := range p.seedFilters {
			if !f.Pred(row) {
				if stats != nil {
					stats.SeedDrops++
				}
				continue seedLoop
			}
		}
		if !st.run(0, row) {
			return
		}
	}
}

// run executes steps[i:] against row; false aborts the whole pipeline.
//
//eevet:hotpath
func (st *execState) run(i int, row Row) bool {
	if i == len(st.plan.steps) {
		if st.stats != nil {
			st.stats.Emitted++
		}
		return st.emit(row)
	}
	if st.stats != nil {
		return st.runInstrumented(i, row)
	}
	return st.dispatch(i, &st.plan.steps[i], row)
}

// runInstrumented wraps dispatch with the per-step counters: one rows-in
// increment and one inclusive clock read pair per invocation. Elapsed
// time is inclusive of downstream steps; profile renderers derive self
// time by subtracting the next step's inclusive total.
func (st *execState) runInstrumented(i int, row Row) bool {
	sr := &st.stats.Steps[i]
	sr.RowsIn++
	start := time.Now()
	ok := st.dispatch(i, &st.plan.steps[i], row)
	sr.ElapsedNs += int64(time.Since(start))
	return ok
}

// dispatch selects the step's access strategy.
//
//eevet:hotpath
func (st *execState) dispatch(i int, step *planStep, row Row) bool {
	if step.probe != nil {
		return st.runProbe(i, step, row)
	}
	switch step.merge {
	case mergeS:
		return st.runMergeS(i, step, row)
	case mergeOConstS, mergeONewS:
		return st.runMergeO(i, step, row)
	}
	return st.runScan(i, step, row)
}

// runProbe executes an index probe step: the external index generates
// exact candidates for the unbound slot from the bound slot's ID, and
// each candidate extends the row depth-first (preserving the stream's
// outer sort order, like a nested-loop extension).
//
//eevet:hotpath
func (st *execState) runProbe(i int, step *planStep, row Row) bool {
	pr := step.probe
	ok := true
	pr.candidates(row[pr.boundSlot], pr.aBound, func(id ID) bool {
		if st.cancel != nil && st.pollCancel() {
			ok = false
			return false
		}
		if st.stats != nil {
			st.stats.Steps[i].Matches++
		}
		row[pr.newSlot] = id
		for _, f := range step.filters {
			if !f.Pred(row) {
				if st.stats != nil {
					st.stats.Steps[i].FilterDrops++
				}
				return true
			}
		}
		if !st.run(i+1, row) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

//eevet:hotpath
func resolveRef(r slotRef, row Row) ID {
	switch r.kind {
	case refConst:
		return r.id
	case refBound:
		return row[r.slot]
	default:
		return NoID
	}
}

//eevet:hotpath
func (st *execState) runScan(i int, step *planStep, row Row) bool {
	es := resolveRef(step.s, row)
	ep := resolveRef(step.p, row)
	eo := resolveRef(step.o, row)
	ok := true
	st.s.matchLocked(es, ep, eo, func(t EncTriple) bool {
		if st.cancel != nil && st.pollCancel() {
			ok = false
			return false
		}
		if step.eqPS && t.P != t.S {
			return true
		}
		if step.eqOS && t.O != t.S {
			return true
		}
		if step.eqOP && t.O != t.P {
			return true
		}
		if st.stats != nil {
			st.stats.Steps[i].Matches++
		}
		if step.s.kind == refNew {
			row[step.s.slot] = t.S
		}
		if step.p.kind == refNew {
			row[step.p.slot] = t.P
		}
		if step.o.kind == refNew {
			row[step.o.slot] = t.O
		}
		for _, f := range step.filters {
			if !f.Pred(row) {
				if st.stats != nil {
					st.stats.Steps[i].FilterDrops++
				}
				return true
			}
		}
		if !st.run(i+1, row) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// runMergeS advances the sorted POS(p,o) subject cursor in lock-step with
// the stream (sorted semi-join: the pattern binds nothing new).
//
//eevet:hotpath
func (st *execState) runMergeS(i int, step *planStep, row Row) bool {
	seg, c := st.segs[i], st.cursors[i]
	k := row[step.mergeSlot]
	for c < len(seg) && seg[c].S < k {
		c++
	}
	st.cursors[i] = c
	if c >= len(seg) {
		// The stream is ascending, so no later row can match either.
		return false
	}
	if seg[c].S != k {
		return true
	}
	if st.stats != nil {
		st.stats.Steps[i].Matches++
	}
	for _, f := range step.filters {
		if !f.Pred(row) {
			if st.stats != nil {
				st.stats.Steps[i].FilterDrops++
			}
			return true
		}
	}
	return st.run(i+1, row)
}

// runMergeO merges on the object: SPO(s,p) when S is constant (binds
// nothing), POS(p) when S is a fresh variable (binds S per group
// member). The cursor rests at the start of the current O-group so
// duplicate stream keys revisit it.
//
//eevet:hotpath
func (st *execState) runMergeO(i int, step *planStep, row Row) bool {
	seg, c := st.segs[i], st.cursors[i]
	k := row[step.mergeSlot]
	for c < len(seg) && seg[c].O < k {
		c++
	}
	st.cursors[i] = c
	if c >= len(seg) {
		return false
	}
	if seg[c].O != k {
		return true
	}
	if step.merge == mergeOConstS {
		if st.stats != nil {
			st.stats.Steps[i].Matches++
		}
		for _, f := range step.filters {
			if !f.Pred(row) {
				if st.stats != nil {
					st.stats.Steps[i].FilterDrops++
				}
				return true
			}
		}
		return st.run(i+1, row)
	}
group:
	for j := c; j < len(seg) && seg[j].O == k; j++ {
		if st.cancel != nil && st.pollCancel() {
			return false
		}
		if st.stats != nil {
			st.stats.Steps[i].Matches++
		}
		row[step.s.slot] = seg[j].S
		for _, f := range step.filters {
			if !f.Pred(row) {
				if st.stats != nil {
					st.stats.Steps[i].FilterDrops++
				}
				continue group
			}
		}
		if !st.run(i+1, row) {
			return false
		}
	}
	return true
}
