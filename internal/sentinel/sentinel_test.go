package sentinel

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/raster"
)

func TestGenerateLandCoverDeterministic(t *testing.T) {
	g := raster.NewGrid(geom.Point{}, 10, 32, 32)
	a := GenerateLandCover(g, 20, 7)
	b := GenerateLandCover(g, 20, 7)
	for i := range a.Classes {
		if a.Classes[i] != b.Classes[i] {
			t.Fatal("land cover generation not deterministic")
		}
	}
	c := GenerateLandCover(g, 20, 8)
	same := 0
	for i := range a.Classes {
		if a.Classes[i] == c.Classes[i] {
			same++
		}
	}
	if same == len(a.Classes) {
		t.Error("different seeds produced identical maps")
	}
	for _, cl := range a.Classes {
		if cl >= NumLandCoverClasses {
			t.Fatalf("class out of range: %d", cl)
		}
	}
}

func TestGenerateS2SceneClassSeparability(t *testing.T) {
	// Pixels of different classes must have distinguishable band means:
	// average per-class NIR (B08) should be high for forest, low for water.
	g := raster.NewGrid(geom.Point{}, 10, 64, 64)
	cm := raster.NewClassMap(g)
	for row := 0; row < 64; row++ {
		for col := 0; col < 64; col++ {
			if row < 32 {
				cm.Set(col, row, ClassForest)
			} else {
				cm.Set(col, row, ClassSeaLake)
			}
		}
	}
	img := GenerateS2Scene(cm, 3)
	if len(img.Bands) != 13 {
		t.Fatalf("bands = %d", len(img.Bands))
	}
	b08 := img.BandIndex("B08")
	var forestSum, waterSum float64
	for row := 0; row < 64; row++ {
		for col := 0; col < 64; col++ {
			v := float64(img.At(b08, col, row))
			if row < 32 {
				forestSum += v
			} else {
				waterSum += v
			}
		}
	}
	n := float64(32 * 64)
	if forestSum/n < 0.25 {
		t.Errorf("forest NIR mean = %v, want >0.25", forestSum/n)
	}
	if waterSum/n > 0.1 {
		t.Errorf("water NIR mean = %v, want <0.1", waterSum/n)
	}
}

func TestLandCoverNames(t *testing.T) {
	if LandCoverName(ClassForest) != "Forest" {
		t.Error("Forest name")
	}
	if LandCoverName(200) != "Unknown" {
		t.Error("unknown class name")
	}
	if IceClassName(IceBerg) != "Iceberg" || IceClassName(99) != "Unknown" {
		t.Error("ice class names")
	}
}

func TestGenerateIceChart(t *testing.T) {
	g := raster.NewGrid(geom.Point{}, 1000, 100, 100)
	cm := GenerateIceChart(g, 12, 5)
	hist := cm.Histogram()
	if hist[IceOpenWater] == 0 {
		t.Error("no open water generated")
	}
	if hist[IceMultiYear] == 0 {
		t.Error("no multi-year ice generated")
	}
	count, _ := raster.ConnectedComponents(cm, IceBerg)
	if count == 0 || count > 12 {
		t.Errorf("iceberg components = %d, want 1..12 (merging allowed)", count)
	}
	conc := IceConcentration(cm)
	if conc <= 0.3 || conc >= 0.9 {
		t.Errorf("ice concentration = %v, want mid-range", conc)
	}
}

func TestGenerateS1SceneSpeckleStatistics(t *testing.T) {
	g := raster.NewGrid(geom.Point{}, 1000, 80, 80)
	cm := raster.NewClassMap(g) // all open water
	for i := range cm.Classes {
		cm.Classes[i] = IceMultiYear
	}
	looks := 4
	img := GenerateS1Scene(cm, looks, 9)
	st := img.Stats(0) // HH
	mean := st.Mean
	want := float64(s1Backscatter[IceMultiYear][0])
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("HH mean = %v, want ~%v", mean, want)
	}
	// Multiplicative speckle: coefficient of variation ~ 1/sqrt(looks).
	cv := st.StdDev / st.Mean
	wantCV := 1 / math.Sqrt(float64(looks))
	if math.Abs(cv-wantCV)/wantCV > 0.15 {
		t.Errorf("coefficient of variation = %v, want ~%v", cv, wantCV)
	}
}

func TestGammaSampleMean(t *testing.T) {
	rng := newTestRand(11)
	k := 3.5
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += gammaSample(rng, k)
	}
	mean := sum / n
	if math.Abs(mean-k)/k > 0.05 {
		t.Errorf("gamma mean = %v, want ~%v", mean, k)
	}
	// shape < 1 branch
	var sumLow float64
	for i := 0; i < n; i++ {
		sumLow += gammaSample(rng, 0.5)
	}
	if math.Abs(sumLow/n-0.5) > 0.05 {
		t.Errorf("gamma(0.5) mean = %v", sumLow/n)
	}
}

func TestArchiveIngestQueryDownload(t *testing.T) {
	a := NewArchive()
	extent := geom.NewRect(0, 0, 1000, 1000)
	products := GenerateProducts(200, 1, extent)
	for _, p := range products {
		if err := a.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	if a.Len() != 200 {
		t.Fatalf("Len = %d", a.Len())
	}
	if err := a.Ingest(products[0]); err == nil {
		t.Error("duplicate ingest accepted")
	}
	if a.BytesIngested() == 0 {
		t.Error("BytesIngested = 0")
	}

	// Spatial query returns a subset; verify against brute force.
	window := geom.NewRect(0, 0, 300, 300)
	got := a.Query(window, time.Time{}, time.Time{})
	want := 0
	for _, p := range products {
		if p.Footprint.Intersects(window) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("Query = %d products, want %d", len(got), want)
	}

	// Temporal filtering.
	from := time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC)
	timeFiltered := a.Query(extent, from, time.Time{})
	for _, p := range timeFiltered {
		if p.SensingTime.Before(from) {
			t.Fatalf("product %s before from-bound", p.ID)
		}
	}
	if len(timeFiltered) == 0 || len(timeFiltered) >= 200 {
		t.Errorf("time filter kept %d products", len(timeFiltered))
	}

	// Download accounting.
	p0, err := a.Download(products[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if a.BytesDisseminated() != p0.SizeBytes || a.Downloads() != 1 {
		t.Errorf("dissemination accounting: %d bytes, %d downloads",
			a.BytesDisseminated(), a.Downloads())
	}
	if _, err := a.Download("nope"); err == nil {
		t.Error("download of missing product succeeded")
	}
}

func TestArchiveIncrementalIndex(t *testing.T) {
	a := NewArchive()
	extent := geom.NewRect(0, 0, 100, 100)
	p1 := Product{ID: "p1", Footprint: geom.NewRect(10, 10, 20, 20), SizeBytes: 1}
	if err := a.Ingest(p1); err != nil {
		t.Fatal(err)
	}
	if got := a.Query(extent, time.Time{}, time.Time{}); len(got) != 1 {
		t.Fatalf("first query = %d", len(got))
	}
	p2 := Product{ID: "p2", Footprint: geom.NewRect(50, 50, 60, 60), SizeBytes: 1}
	if err := a.Ingest(p2); err != nil {
		t.Fatal(err)
	}
	if got := a.Query(extent, time.Time{}, time.Time{}); len(got) != 2 {
		t.Fatalf("query after second ingest = %d", len(got))
	}
}

func TestMissionString(t *testing.T) {
	if Sentinel1.String() != "Sentinel-1" || Mission(9).String() != "Mission(9)" {
		t.Error("Mission.String")
	}
}

func TestIceConcentrationBounds(t *testing.T) {
	g := raster.NewGrid(geom.Point{}, 1, 4, 4)
	cm := raster.NewClassMap(g) // all open water
	if IceConcentration(cm) != 0 {
		t.Error("open water concentration != 0")
	}
	for i := range cm.Classes {
		cm.Classes[i] = IceFirstYear
	}
	if IceConcentration(cm) != 1 {
		t.Error("full ice concentration != 1")
	}
}

// newTestRand returns a PRNG for statistical tests.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
