package analysis

import (
	"fmt"
	"go/token"
	"os"
	"sort"
)

// RunPackage applies every analyzer to one loaded package and returns
// the surviving findings (those not covered by an //eevet:ignore
// marker), sorted by position.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	marks := CollectMarkers(pkg.Fset, pkg.Files)
	var findings []Finding
	for _, a := range analyzers {
		a := a
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			PkgPath:   pkg.PkgPath,
			TestFile:  pkg.IsTestFile,
		}
		pass.Report = func(d Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if marks.Suppressed(a.Name, pos) {
				return
			}
			findings = append(findings, Finding{Analyzer: a.Name, Position: pos, Diagnostic: d})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.PkgPath, err)
		}
	}
	sortFindings(findings)
	return findings, nil
}

// Check loads the packages matching patterns under dir and runs the
// analyzers over each; the concatenated findings come back sorted.
func Check(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, pkg := range pkgs {
		fs, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	sortFindings(all)
	return all, nil
}

// ApplyFixes rewrites the files named in the findings' suggested fixes.
// Edits are applied file by file in reverse position order so earlier
// offsets stay valid; overlapping edits abort with an error. It returns
// the number of edits applied.
func ApplyFixes(pkgs []*Package, findings []Finding) (int, error) {
	type edit struct {
		start, end int // byte offsets within the file
		newText    string
	}
	byFile := make(map[string][]edit)
	for _, f := range findings {
		fset := pkgFset(pkgs, f)
		if fset == nil {
			continue
		}
		for _, fix := range f.SuggestedFixes {
			for _, te := range fix.TextEdits {
				pos := fset.Position(te.Pos)
				end := fset.Position(te.End)
				if pos.Filename == "" || pos.Filename != end.Filename {
					return 0, fmt.Errorf("analysis: fix for %s spans files", f)
				}
				byFile[pos.Filename] = append(byFile[pos.Filename], edit{pos.Offset, end.Offset, te.NewText})
			}
		}
	}
	applied := 0
	for name, edits := range byFile {
		src, err := os.ReadFile(name)
		if err != nil {
			return applied, err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for i := 1; i < len(edits); i++ {
			if edits[i].end > edits[i-1].start {
				return applied, fmt.Errorf("analysis: overlapping fixes in %s", name)
			}
		}
		for _, e := range edits {
			src = append(src[:e.start], append([]byte(e.newText), src[e.end:]...)...)
			applied++
		}
		if err := os.WriteFile(name, src, 0o644); err != nil {
			return applied, err
		}
	}
	return applied, nil
}

func pkgFset(pkgs []*Package, f Finding) *token.FileSet {
	for _, p := range pkgs {
		if p.Fset.File(f.Diagnostic.Pos) != nil {
			return p.Fset
		}
	}
	return nil
}
