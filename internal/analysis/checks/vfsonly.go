package checks

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// osFileOps is the set of os-package functions that touch the
// filesystem. Everything the storage engine needs has a vfs.FS or
// vfs.File counterpart; anything else (CreateTemp, WriteFile, ...) must
// go through a helper built on the seam.
var osFileOps = map[string]bool{
	"Chdir": true, "Chmod": true, "Chown": true, "Chtimes": true,
	"Create": true, "CreateTemp": true, "Link": true, "Lstat": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true, "NewFile": true,
	"Open": true, "OpenFile": true, "ReadDir": true, "ReadFile": true,
	"Readlink": true, "Remove": true, "RemoveAll": true, "Rename": true,
	"Stat": true, "Symlink": true, "Truncate": true, "WriteFile": true,
}

// vfsFSOps are the os operations with an identically-shaped method on
// vfs.FS, for which the suggested fix is a pure selector rewrite.
var vfsFSOps = map[string]bool{
	"Open": true, "OpenFile": true, "ReadFile": true, "Rename": true,
	"Remove": true, "Stat": true, "MkdirAll": true,
}

// Vfsonly enforces the PR 8 filesystem seam: inside internal/storage
// (the vfs package itself excepted) no code — tests included — may call
// os-package file operations or import io/ioutil. Production code takes
// an injected vfs.FS; tests go through vfs.OS so the fault-injection
// harness stays the only place that decides what "the filesystem" is.
var Vfsonly = &analysis.Analyzer{
	Name: "vfsonly",
	Doc: "storage I/O must route through the vfs.FS seam: no direct os.* file\n" +
		"operations or io/ioutil inside internal/storage outside the vfs package",
	Run: runVfsonly,
}

func runVfsonly(pass *analysis.Pass) error {
	if !pathHasDir(pass.PkgPath, "internal/storage") || pathHasDir(pass.PkgPath, "internal/storage/vfs") {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			if imp.Path.Value == `"io/ioutil"` {
				pass.Reportf(imp.Pos(), "io/ioutil import in internal/storage: use the vfs.FS seam (vfs.OS in tests)")
			}
		}
		vfsName := vfsImportName(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[x].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "os" {
				return true
			}
			if !osFileOps[sel.Sel.Name] {
				return true
			}
			d := analysis.Diagnostic{
				Pos: sel.Pos(),
				End: sel.End(),
				Message: "direct os." + sel.Sel.Name + " in internal/storage: route through the vfs.FS seam " +
					"(Options.FS in production code, vfs.OS in tests)",
			}
			if vfsFSOps[sel.Sel.Name] && vfsName != "" {
				d.SuggestedFixes = []analysis.SuggestedFix{{
					Message: "call the operation on vfs.OS",
					TextEdits: []analysis.TextEdit{{
						Pos:     sel.Pos(),
						End:     sel.End(),
						NewText: vfsName + ".OS." + sel.Sel.Name,
					}},
				}}
			}
			pass.Report(d)
			return true
		})
	}
	return nil
}

// vfsImportName returns the local name under which f imports the vfs
// package, "" when it does not.
func vfsImportName(f *ast.File) string {
	for _, imp := range f.Imports {
		if imp.Path.Value == `"repro/internal/storage/vfs"` {
			if imp.Name != nil {
				if imp.Name.Name == "_" || imp.Name.Name == "." {
					return ""
				}
				return imp.Name.Name
			}
			return "vfs"
		}
	}
	return ""
}
