package experiments

import (
	"fmt"
	"time"

	"repro/internal/dl"
	"repro/internal/dl/datasets"
	"repro/internal/promet"
	"repro/internal/raster"
	"repro/internal/seaice"
	"repro/internal/sentinel"
	"repro/internal/trainingset"
)

// E4 — distributed training scale-out (C1, Goyal et al. [8]): epoch
// throughput vs worker count for allreduce and parameter-server versus
// the single-worker baseline.
func E4(cfg Config) *Table {
	samples := cfg.scale(20000, 4000)
	epochs := cfg.scale(3, 1)
	workers := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		workers = []int{1, 2, 4}
	}
	t := &Table{
		ID:    "E4",
		Title: "Distributed data-parallel training: throughput vs workers (C1)",
		Header: []string{"strategy", "workers", "samples/s", "speedup_meas",
			"speedup_model", "comm_MB", "final_loss"},
		Notes: "speedup_meas is wall-clock on this host (flat on a single-core machine); " +
			"speedup_model uses the calibrated cost model (10 GbE, measured per-step compute and server-apply times)",
	}
	base := datasets.EuroSATVectors(samples, 17)
	cfgT := dl.TrainConfig{Epochs: epochs, BatchSize: 512, LR: 0.2, Momentum: 0.9, Seed: 17}
	spec := dl.ModelSpec{Arch: dl.ArchMLP, In: 13, Hidden: 512, Classes: 10, Seed: 17}

	model := calibrateScaling(spec, base, cfgT)

	var singleRate float64
	run := func(s dl.Strategy, w int) dl.TrainStats {
		ds := &dl.Dataset{X: base.X.Clone(), Y: append([]int(nil), base.Y...), Classes: base.Classes}
		c := cfgT
		c.Workers = w
		_, stats := s.Train(spec, ds, c)
		return stats
	}
	stats := run(dl.SingleWorker{}, 1)
	singleRate = stats.SamplesPerSec
	t.Rows = append(t.Rows, []string{"single", "1", f1(stats.SamplesPerSec), "1.00", "1.00",
		f2(float64(stats.CommBytes) / 1e6), fmt.Sprintf("%.3f", stats.FinalLoss)})
	for _, s := range []dl.Strategy{dl.AllReduce{}, dl.ParameterServer{}} {
		for _, w := range workers {
			if w == 1 {
				continue
			}
			st := run(s, w)
			var modeled float64
			if s.Name() == "allreduce" {
				modeled = model.allreduceSpeedup(w)
			} else {
				modeled = model.paramServerSpeedup(w)
			}
			t.Rows = append(t.Rows, []string{
				s.Name(), i0(w), f1(st.SamplesPerSec),
				f2(st.SamplesPerSec / singleRate),
				f2(modeled),
				f2(float64(st.CommBytes) / 1e6),
				fmt.Sprintf("%.3f", st.FinalLoss),
			})
		}
	}
	return t
}

// scalingModel is the E4 performance model, calibrated by measurement on
// this host. It substitutes for the multi-GPU cluster the paper assumes
// (DESIGN.md substitution table): the scale-out *shape* is a function of
// the synchronization structure — ring allreduce moves 2(N-1)/N parameter
// volumes per step concurrently with nothing else, while the parameter
// server applies every worker's update serially.
type scalingModel struct {
	// stepCompute is the measured gradient-computation time for a
	// full-batch step on one worker.
	stepCompute time.Duration
	// serverApply is the measured time to apply one worker's gradients
	// (the parameter server's serial section).
	serverApply time.Duration
	// paramBytes is the model size.
	paramBytes float64
	// linkBytesPerSec is the assumed interconnect (10 GbE).
	linkBytesPerSec float64
}

func calibrateScaling(spec dl.ModelSpec, ds *dl.Dataset, cfg dl.TrainConfig) scalingModel {
	net := spec.Build()
	x, y := ds.Batch(0, cfg.BatchSize)
	// Warm up, then measure the step and apply costs.
	net.TrainStep(x, y)
	const reps = 5
	start := time.Now()
	for i := 0; i < reps; i++ {
		net.TrainStep(x, y)
	}
	stepCompute := time.Since(start) / reps
	opt := dl.NewSGD(cfg.LR, cfg.Momentum)
	start = time.Now()
	for i := 0; i < reps; i++ {
		opt.Step(net.Params(), net.Grads())
	}
	serverApply := time.Since(start) / reps
	return scalingModel{
		stepCompute:     stepCompute,
		serverApply:     serverApply,
		paramBytes:      float64(net.NumParams()) * 4,
		linkBytesPerSec: 1.25e9, // 10 GbE
	}
}

// allreduceSpeedup models synchronous data parallelism: per step, compute
// shrinks to 1/N while the ring collective adds 2(N-1)/N parameter
// volumes of transfer.
func (m scalingModel) allreduceSpeedup(n int) float64 {
	compute := m.stepCompute.Seconds() / float64(n)
	comm := 2 * float64(n-1) / float64(n) * m.paramBytes / m.linkBytesPerSec
	return m.stepCompute.Seconds() / (compute + comm)
}

// paramServerSpeedup models asynchronous workers against one server:
// throughput grows with N until the server's serial apply path saturates.
func (m scalingModel) paramServerSpeedup(n int) float64 {
	perWorkerStep := m.stepCompute.Seconds() / float64(n) // same global batch split
	commPerStep := 2 * m.paramBytes / m.linkBytesPerSec
	workerBound := m.stepCompute.Seconds() / (perWorkerStep + commPerStep)
	serverBound := m.stepCompute.Seconds() / (float64(n) * m.serverApply.Seconds())
	if serverBound < workerBound {
		return serverBound
	}
	return workerBound
}

// E5 — EuroSAT-mirror benchmark (C2, Helber et al. [11]): accuracy of
// the classical baseline, the MLP and the CNN on the 27 000-sample
// synthetic mirror.
func E5(cfg Config) *Table {
	n := cfg.scale(datasets.EuroSATSize, 4000)
	patches := cfg.scale(6000, 1500)
	epochs := cfg.scale(20, 10)
	t := &Table{
		ID:     "E5",
		Title:  "EuroSAT-mirror classification (13 bands, 10 classes) (C2)",
		Header: []string{"model", "input", "train_n", "test_acc"},
		Notes:  "centroid baseline is near Bayes-optimal on pixel vectors; the CNN exploits patch context",
	}
	// Pixel-vector variants.
	vec := datasets.EuroSATVectors(n, 21)
	train, test := vec.Split(0.8)
	nc := dl.FitNearestCentroid(train)
	t.Rows = append(t.Rows, []string{"nearest-centroid", "13-band pixel", i0(train.Len()), f2(nc.Accuracy(test))})

	mlpSpec := dl.ModelSpec{Arch: dl.ArchMLP, In: 13, Hidden: 64, Classes: 10, Seed: 21}
	mlp, _ := dl.SingleWorker{}.Train(mlpSpec, train, dl.TrainConfig{
		Epochs: epochs, BatchSize: 64, LR: 0.3, Momentum: 0.9, Seed: 21,
	})
	t.Rows = append(t.Rows, []string{"MLP 13-64-10", "13-band pixel", i0(train.Len()), f2(mlp.Accuracy(test.X, test.Y))})

	// Patch CNN.
	patch := datasets.EuroSATPatches(patches, 8, 22)
	ptrain, ptest := patch.Split(0.8)
	cnnSpec := dl.ModelSpec{Arch: dl.ArchCNN, In: 13, PatchH: 8, PatchW: 8, Hidden: 64, Classes: 10, Seed: 22}
	cnn, _ := dl.SingleWorker{}.Train(cnnSpec, ptrain, dl.TrainConfig{
		Epochs: 15, BatchSize: 64, LR: 0.05, Momentum: 0.9, Seed: 22,
	})
	t.Rows = append(t.Rows, []string{"CNN conv3x3x8+pool", "13x8x8 patch", i0(ptrain.Len()), f2(cnn.Accuracy(ptest.X, ptest.Y))})
	return t
}

// E6 — training-set generation from cartographic products (C2): harvest
// throughput and augmentation scaling toward millions of samples.
func E6(cfg Config) *Table {
	t := &Table{
		ID:     "E6",
		Title:  "Training-set generation from cartographic layers (C2)",
		Header: []string{"stage", "workers", "samples", "wall_ms", "samples/s"},
	}
	ext := extent
	grid := raster.NewGrid(ext.Min, ext.Width()/float64(cfg.scale(400, 100)), cfg.scale(400, 100), cfg.scale(400, 100))
	layers := trainingset.GenerateCartography(ext, cfg.scale(300, 40), 23)
	truth := trainingset.Rasterize(layers, grid)
	scene := sentinel.GenerateS2Scene(truth, 24)

	for _, w := range []int{1, 4, 8} {
		start := time.Now()
		ds, stats := trainingset.Harvest(layers, scene, trainingset.HarvestConfig{
			SamplesPerFeature: cfg.scale(200, 40), Workers: w, Seed: 25,
		})
		elapsed := time.Since(start)
		t.Rows = append(t.Rows, []string{
			"harvest", i0(w), i0(stats.Samples), ms(elapsed),
			f1(float64(ds.Len()) / elapsed.Seconds()),
		})
	}
	ds, _ := trainingset.Harvest(layers, scene, trainingset.HarvestConfig{
		SamplesPerFeature: cfg.scale(200, 40), Workers: 8, Seed: 25,
	})
	factor := cfg.scale(1_000_000, 20_000)/maxI(ds.Len(), 1) + 1
	start := time.Now()
	big := trainingset.Augment(ds, factor, 0.01, 26)
	elapsed := time.Since(start)
	t.Rows = append(t.Rows, []string{
		"augment", "1", i0(big.Len()), ms(elapsed),
		f1(float64(big.Len()) / elapsed.Seconds()),
	})
	return t
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// E12 — 10 m water-availability maps (A1): per-field error of the
// DL-crop-map run and the crop-agnostic baseline against the true-crop
// reference.
func E12(cfg Config) *Table {
	size := cfg.scale(128, 48)
	t := &Table{
		ID:     "E12",
		Title:  "PROMET water availability at 10 m: DL crop map vs crop-agnostic baseline (A1)",
		Header: []string{"crop map", "fields", "mean_abs_err_mm", "max_abs_err_mm"},
		Notes:  "reference = run with ground-truth crops; errors are per coherent field",
	}
	grid := raster.NewGrid(extent.Min, 10, size, size)
	// Patch count scales with the grid so 16x16 tiles stay coherent
	// fields at both scales.
	truth := sentinel.GenerateLandCover(grid, cfg.scale(18, 5), 31)
	scene := sentinel.GenerateS2Scene(truth, 32)
	weather := promet.GenerateWeather(150, 33)
	pcfg := promet.DefaultConfig()

	ref, err := promet.Run(truth, weather, pcfg)
	if err != nil {
		panic(err)
	}

	// DL crop map: classification plus the standard majority
	// post-filter (isolated misclassifications would otherwise flip crop
	// parameters cell-by-cell).
	train := datasets.EuroSATVectors(cfg.scale(12000, 6000), 34)
	spec := dl.ModelSpec{Arch: dl.ArchMLP, In: 13, Hidden: 32, Classes: 10, Seed: 34}
	net, _ := dl.SingleWorker{}.Train(spec, train, dl.TrainConfig{
		Epochs: cfg.scale(20, 12), BatchSize: 64, LR: 0.3, Momentum: 0.9, Seed: 34,
	})
	cropMap := raster.ModeFilter(classifyS2Scene(scene, net), 1)
	dlRes, err := promet.Run(cropMap, weather, pcfg)
	if err != nil {
		panic(err)
	}
	dlErr := promet.CompareByField(truth, dlRes, ref)
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("DL (acc %.2f)", raster.Agreement(truth, cropMap)),
		i0(dlErr.Fields), f2(dlErr.MeanAbs), f2(dlErr.MaxAbs),
	})

	// Crop-agnostic baseline.
	ucfg := pcfg
	ucfg.Params = nil
	baseRes, err := promet.Run(truth, weather, ucfg)
	if err != nil {
		panic(err)
	}
	baseErr := promet.CompareByField(truth, baseRes, ref)
	t.Rows = append(t.Rows, []string{
		"uniform (no crop info)", i0(baseErr.Fields), f2(baseErr.MeanAbs), f2(baseErr.MaxAbs),
	})
	return t
}

func classifyS2Scene(scene *raster.Image, net *dl.Network) *raster.ClassMap {
	cm := raster.NewClassMap(scene.Grid)
	n := scene.Grid.NumCells()
	bands := len(scene.Bands)
	const batch = 512
	x := dl.NewMatrix(batch, bands)
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		rows := hi - lo
		for r := 0; r < rows; r++ {
			row := x.Row(r)
			for b := 0; b < bands; b++ {
				row[b] = scene.Bands[b].Data[lo+r]
			}
		}
		sub := dl.Matrix{Rows: rows, Cols: bands, Data: x.Data[:rows*bands]}
		for r, p := range net.Predict(sub) {
			cm.Classes[lo+r] = uint8(p)
		}
	}
	return cm
}

// E13 — sea-ice mapping at 1 km (A2): classification accuracy,
// concentration error and throughput.
func E13(cfg Config) *Table {
	size := cfg.scale(256, 64)
	t := &Table{
		ID:     "E13",
		Title:  "Sea-ice classification and 1 km WMO charts (A2)",
		Header: []string{"metric", "value"},
	}
	grid := raster.NewGrid(extent.Min, 100, size, size)
	truth := sentinel.GenerateIceChart(grid, 12, 41)
	scene := sentinel.GenerateS1Scene(truth, 8, 42)

	clf, heldOut := seaice.TrainClassifier(cfg.scale(8000, 2000), 8, cfg.scale(15, 5), 43)
	start := time.Now()
	classified := seaice.ClassifyScene(scene, clf)
	classifyT := time.Since(start)
	chart, err := seaice.MakeChart(classified, 1000)
	if err != nil {
		panic(err)
	}
	trueBergs, _ := raster.ConnectedComponents(truth, sentinel.IceBerg)
	t.Rows = append(t.Rows,
		[]string{"classifier held-out accuracy", f2(heldOut)},
		[]string{"scene pixel agreement", f2(raster.Agreement(truth, classified))},
		[]string{"true ice concentration", f2(sentinel.IceConcentration(truth))},
		[]string{"chart ice concentration", f2(chart.Concentration)},
		[]string{"icebergs (true)", i0(trueBergs)},
		[]string{"icebergs (detected)", i0(chart.Icebergs)},
		[]string{"classification px/s", f1(float64(grid.NumCells()) / classifyT.Seconds())},
	)
	return t
}
