package sparql

import (
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"strings"
)

// Canonical renders the query in a deterministic normal form covering every
// field that affects results: projection (including DISTINCT and
// aggregates), patterns, filters, GROUP BY, ORDER BY, LIMIT and OFFSET.
// Two query
// strings that parse to equivalent ASTs — regardless of whitespace,
// comments, prefix spellings or keyword case — share one canonical form,
// which is what query-result caches key on.
func (q *Query) Canonical() string {
	var b strings.Builder
	b.WriteString("SELECT")
	if q.Distinct {
		b.WriteString(" DISTINCT")
	}
	if q.Star {
		b.WriteString(" *")
	}
	for _, v := range q.Vars {
		b.WriteString(" ?" + v)
	}
	for _, a := range q.Aggregates {
		b.WriteString(" (" + a.Fn + "(")
		if a.Var == "" {
			b.WriteString("*")
		} else {
			b.WriteString("?" + a.Var)
		}
		b.WriteString(") AS ?" + a.As + ")")
	}
	b.WriteString(" WHERE {")
	for _, p := range q.Patterns {
		b.WriteString(" " + p.String()) // TriplePattern.String includes the trailing "."
	}
	for _, f := range q.Filters {
		b.WriteString(" FILTER(" + f.String() + ")")
	}
	b.WriteString(" }")
	if q.GroupBy != "" {
		b.WriteString(" GROUP BY ?" + q.GroupBy)
	}
	if q.OrderBy != "" {
		b.WriteString(" ORDER BY ")
		if q.OrderDesc {
			b.WriteString("DESC")
		} else {
			b.WriteString("ASC")
		}
		b.WriteString("(?" + q.OrderBy + ")")
	}
	if q.Limit > 0 {
		b.WriteString(" LIMIT " + strconv.Itoa(q.Limit))
	}
	// OFFSET is part of the canonical form so result caches never
	// conflate different pages of one query.
	if q.Offset > 0 {
		b.WriteString(" OFFSET " + strconv.Itoa(q.Offset))
	}
	return b.String()
}

// Fingerprint returns a compact hash of the canonical form, suitable as a
// cache key component.
func (q *Query) Fingerprint() string {
	h := fnv.New64a()
	io.WriteString(h, q.Canonical())
	return fmt.Sprintf("%016x", h.Sum64())
}

// Normalize parses a query string and returns its canonical form, so
// callers holding only text can normalize without keeping the AST.
func Normalize(qs string) (string, error) {
	q, err := Parse(qs)
	if err != nil {
		return "", err
	}
	return q.Canonical(), nil
}
