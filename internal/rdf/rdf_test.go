package rdf

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://example.org/a"), "<http://example.org/a>"},
		{NewBlank("b0"), "_:b0"},
		{NewLiteral("hello"), `"hello"`},
		{NewLangLiteral("hallo", "de"), `"hallo"@de`},
		{NewIntLiteral(42), `"42"^^<` + XSDInteger + `>`},
		{NewTypedLiteral("x", XSDString), `"x"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String() = %s, want %s", got, c.want)
		}
	}
}

func TestParseTermRoundTrip(t *testing.T) {
	terms := []Term{
		NewIRI("http://example.org/a"),
		NewBlank("b12"),
		NewLiteral("plain text with \"quotes\""),
		NewLangLiteral("bonjour", "fr"),
		NewIntLiteral(-7),
		NewFloatLiteral(2.5),
		NewBoolLiteral(true),
		NewWKTLiteral("POINT (1 2)"),
	}
	for _, in := range terms {
		got, err := ParseTerm(in.String())
		if err != nil {
			t.Fatalf("ParseTerm(%s): %v", in, err)
		}
		if got.String() != in.String() {
			t.Errorf("round trip: %s -> %s", in, got)
		}
	}
}

func TestParseTermErrors(t *testing.T) {
	bad := []string{"", "plainword", `"unterminated`, `"x"^^bad`, `"x"#`}
	for _, in := range bad {
		if _, err := ParseTerm(in); err == nil {
			t.Errorf("ParseTerm(%q) succeeded, want error", in)
		}
	}
}

func TestTermNumericAccessors(t *testing.T) {
	if v, err := NewIntLiteral(99).Int(); err != nil || v != 99 {
		t.Errorf("Int() = %v, %v", v, err)
	}
	if v, err := NewFloatLiteral(1.5).Float(); err != nil || v != 1.5 {
		t.Errorf("Float() = %v, %v", v, err)
	}
	if _, err := NewIRI("x").Int(); err == nil {
		t.Error("Int() on IRI should error")
	}
	if !NewWKTLiteral("POINT (0 0)").IsGeometry() {
		t.Error("wktLiteral should be geometry")
	}
	if NewLiteral("POINT (0 0)").IsGeometry() {
		t.Error("plain literal should not be geometry")
	}
}

func TestDictEncodeDecode(t *testing.T) {
	d := NewDict()
	a := NewIRI("http://example.org/a")
	b := NewIRI("http://example.org/b")
	ida := d.Encode(a)
	idb := d.Encode(b)
	if ida == idb {
		t.Fatal("distinct terms got same ID")
	}
	if got := d.Encode(a); got != ida {
		t.Errorf("re-encode changed ID: %d != %d", got, ida)
	}
	if got, ok := d.Decode(ida); !ok || got != a {
		t.Errorf("Decode(%d) = %v, %v", ida, got, ok)
	}
	if _, ok := d.Decode(999); ok {
		t.Error("Decode of unknown ID should fail")
	}
	if _, ok := d.Decode(NoID); ok {
		t.Error("Decode(NoID) should fail")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if _, ok := d.Lookup(NewIRI("http://example.org/absent")); ok {
		t.Error("Lookup of absent term should fail")
	}
}

func TestDictConcurrent(t *testing.T) {
	d := NewDict()
	done := make(chan map[string]ID, 8)
	for w := 0; w < 8; w++ {
		go func() {
			local := map[string]ID{}
			for i := 0; i < 200; i++ {
				iri := fmt.Sprintf("http://example.org/%d", i%50)
				local[iri] = d.Encode(NewIRI(iri))
			}
			done <- local
		}()
	}
	merged := map[string]ID{}
	for w := 0; w < 8; w++ {
		local := <-done
		for iri, id := range local {
			if prev, ok := merged[iri]; ok && prev != id {
				t.Fatalf("term %s has two IDs: %d and %d", iri, prev, id)
			}
			merged[iri] = id
		}
	}
	if d.Len() != 50 {
		t.Errorf("Len = %d, want 50", d.Len())
	}
}

func ex(name string) Term { return NewIRI("http://example.org/" + name) }

func buildTestStore() *Store {
	s := NewStore()
	s.Add(ex("alice"), ex("knows"), ex("bob"))
	s.Add(ex("alice"), ex("knows"), ex("carol"))
	s.Add(ex("bob"), ex("knows"), ex("carol"))
	s.Add(ex("alice"), NewIRI(RDFType), ex("Person"))
	s.Add(ex("bob"), NewIRI(RDFType), ex("Person"))
	s.Add(ex("carol"), NewIRI(RDFType), ex("Robot"))
	s.Add(ex("alice"), ex("age"), NewIntLiteral(30))
	return s
}

func TestStoreMatchShapes(t *testing.T) {
	s := buildTestStore()
	if s.Len() != 7 {
		t.Fatalf("Len = %d, want 7", s.Len())
	}
	count := func(sub, pred, obj Term) int {
		n := 0
		s.MatchTerms(sub, pred, obj, func(Triple) bool { n++; return true })
		return n
	}
	var zero Term
	cases := []struct {
		name          string
		sub, pred, ob Term
		want          int
	}{
		{"S??", ex("alice"), zero, zero, 4},
		{"SP?", ex("alice"), ex("knows"), zero, 2},
		{"SPO", ex("alice"), ex("knows"), ex("bob"), 1},
		{"?P?", zero, ex("knows"), zero, 3},
		{"?PO", zero, ex("knows"), ex("carol"), 2},
		{"??O", zero, zero, ex("Person"), 2},
		{"S?O", ex("alice"), zero, ex("bob"), 1},
		{"???", zero, zero, zero, 7},
		{"absent", ex("nobody"), zero, zero, 0},
	}
	for _, c := range cases {
		if got := count(c.sub, c.pred, c.ob); got != c.want {
			t.Errorf("%s: count = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestStoreDuplicates(t *testing.T) {
	s := NewStore()
	s.Add(ex("a"), ex("p"), ex("b"))
	s.Add(ex("a"), ex("p"), ex("b"))
	if s.Len() != 1 {
		t.Errorf("Len = %d after duplicate insert, want 1", s.Len())
	}
}

func TestStoreInterleavedWriteRead(t *testing.T) {
	s := NewStore()
	s.Add(ex("a"), ex("p"), ex("b"))
	if got := s.Count(NoID, NoID, NoID); got != 1 {
		t.Fatalf("count after first write = %d", got)
	}
	s.Add(ex("b"), ex("p"), ex("c"))
	if got := s.Count(NoID, NoID, NoID); got != 2 {
		t.Fatalf("count after second write = %d", got)
	}
	pid, _ := s.Dict().Lookup(ex("p"))
	if got := s.Count(NoID, pid, NoID); got != 2 {
		t.Errorf("predicate count = %d, want 2", got)
	}
}

func TestStoreEarlyStop(t *testing.T) {
	s := buildTestStore()
	n := 0
	s.Match(NoID, NoID, NoID, func(EncTriple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d, want 3", n)
	}
}

func TestSolveSimpleBGP(t *testing.T) {
	s := buildTestStore()
	// Who does alice know?
	res := s.Solve([]TriplePattern{
		{S: T(ex("alice")), P: T(ex("knows")), O: V("who")},
	})
	if len(res) != 2 {
		t.Fatalf("got %d solutions, want 2", len(res))
	}
	names := map[string]bool{}
	for _, b := range res {
		names[s.Dict().MustDecode(b["who"]).Value] = true
	}
	if !names["http://example.org/bob"] || !names["http://example.org/carol"] {
		t.Errorf("unexpected solutions: %v", names)
	}
}

func TestSolveJoin(t *testing.T) {
	s := buildTestStore()
	// People alice knows who are Persons.
	res := s.Solve([]TriplePattern{
		{S: T(ex("alice")), P: T(ex("knows")), O: V("x")},
		{S: V("x"), P: T(NewIRI(RDFType)), O: T(ex("Person"))},
	})
	if len(res) != 1 {
		t.Fatalf("got %d solutions, want 1", len(res))
	}
	if got := s.Dict().MustDecode(res[0]["x"]); got != ex("bob") {
		t.Errorf("x = %v, want bob", got)
	}
}

func TestSolveChainJoin(t *testing.T) {
	s := buildTestStore()
	// ?a knows ?b, ?b knows ?c
	res := s.Solve([]TriplePattern{
		{S: V("a"), P: T(ex("knows")), O: V("b")},
		{S: V("b"), P: T(ex("knows")), O: V("c")},
	})
	// alice->bob->carol is the only chain
	if len(res) != 1 {
		t.Fatalf("got %d solutions, want 1", len(res))
	}
	b := res[0]
	if s.Dict().MustDecode(b["a"]) != ex("alice") ||
		s.Dict().MustDecode(b["b"]) != ex("bob") ||
		s.Dict().MustDecode(b["c"]) != ex("carol") {
		t.Errorf("unexpected chain: %s", s.BindingString(b))
	}
}

func TestSolveWithFilter(t *testing.T) {
	s := buildTestStore()
	res := s.Solve(
		[]TriplePattern{{S: V("x"), P: T(NewIRI(RDFType)), O: V("t")}},
		func(st *Store, b Binding) bool {
			return st.Dict().MustDecode(b["t"]) == ex("Robot")
		},
	)
	if len(res) != 1 {
		t.Fatalf("got %d solutions, want 1", len(res))
	}
	if s.Dict().MustDecode(res[0]["x"]) != ex("carol") {
		t.Errorf("x = %v", s.Dict().MustDecode(res[0]["x"]))
	}
}

func TestSolveNoSolutions(t *testing.T) {
	s := buildTestStore()
	res := s.Solve([]TriplePattern{
		{S: T(ex("carol")), P: T(ex("knows")), O: V("x")},
	})
	if len(res) != 0 {
		t.Errorf("got %d solutions, want 0", len(res))
	}
	// Pattern with a term absent from the dictionary entirely.
	res = s.Solve([]TriplePattern{
		{S: T(ex("nobody")), P: V("p"), O: V("o")},
	})
	if len(res) != 0 {
		t.Errorf("absent term: got %d solutions, want 0", len(res))
	}
}

func TestSolveSameVarTwice(t *testing.T) {
	s := NewStore()
	s.Add(ex("n1"), ex("linked"), ex("n1")) // self loop
	s.Add(ex("n1"), ex("linked"), ex("n2"))
	res := s.Solve([]TriplePattern{
		{S: V("x"), P: T(ex("linked")), O: V("x")},
	})
	if len(res) != 1 {
		t.Fatalf("self-loop query: got %d solutions, want 1", len(res))
	}
	if s.Dict().MustDecode(res[0]["x"]) != ex("n1") {
		t.Errorf("x = %v", s.Dict().MustDecode(res[0]["x"]))
	}
}

func TestSolveCartesianAvoidance(t *testing.T) {
	// Two patterns sharing no variables still produce the cross product,
	// but selective patterns must be evaluated first (cost ordering).
	s := buildTestStore()
	res := s.Solve([]TriplePattern{
		{S: V("x"), P: T(ex("knows")), O: V("y")},
		{S: T(ex("alice")), P: T(ex("age")), O: V("age")},
	})
	if len(res) != 3 {
		t.Fatalf("got %d solutions, want 3", len(res))
	}
	for _, b := range res {
		if _, ok := b["age"]; !ok {
			t.Error("binding missing age variable")
		}
	}
}

func TestMatchAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewStore()
	type enc struct{ s, p, o int }
	var all []enc
	seen := map[enc]bool{}
	for i := 0; i < 400; i++ {
		e := enc{rng.Intn(20), rng.Intn(5), rng.Intn(30)}
		if !seen[e] {
			seen[e] = true
			all = append(all, e)
		}
		s.Add(ex(fmt.Sprintf("s%d", e.s)), ex(fmt.Sprintf("p%d", e.p)), ex(fmt.Sprintf("o%d", e.o)))
	}
	for trial := 0; trial < 50; trial++ {
		qs, qp, qo := rng.Intn(20), rng.Intn(5), rng.Intn(30)
		// randomly wildcard each position
		ws, wp, wo := rng.Intn(2) == 0, rng.Intn(2) == 0, rng.Intn(2) == 0
		want := 0
		for _, e := range all {
			if (ws || e.s == qs) && (wp || e.p == qp) && (wo || e.o == qo) {
				want++
			}
		}
		var sub, pred, obj Term
		if !ws {
			sub = ex(fmt.Sprintf("s%d", qs))
		}
		if !wp {
			pred = ex(fmt.Sprintf("p%d", qp))
		}
		if !wo {
			obj = ex(fmt.Sprintf("o%d", qo))
		}
		got := 0
		s.MatchTerms(sub, pred, obj, func(Triple) bool { got++; return true })
		if got != want {
			t.Fatalf("trial %d (%v %v %v wild=%v%v%v): got %d, want %d",
				trial, qs, qp, qo, ws, wp, wo, got, want)
		}
	}
}

func TestStoreQuickProperty(t *testing.T) {
	// Property: every added triple is findable by exact match.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		var triples []Triple
		for i := 0; i < 50; i++ {
			tr := Triple{
				S: ex(fmt.Sprintf("s%d", rng.Intn(10))),
				P: ex(fmt.Sprintf("p%d", rng.Intn(3))),
				O: NewIntLiteral(int64(rng.Intn(100))),
			}
			s.AddTriple(tr)
			triples = append(triples, tr)
		}
		for _, tr := range triples {
			found := false
			s.MatchTerms(tr.S, tr.P, tr.O, func(Triple) bool {
				found = true
				return false
			})
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTriplesExport(t *testing.T) {
	s := buildTestStore()
	all := s.Triples()
	if len(all) != 7 {
		t.Fatalf("Triples() returned %d, want 7", len(all))
	}
	for _, tr := range all {
		if tr.S.Value == "" {
			t.Error("empty subject in exported triple")
		}
	}
}

func TestTripleString(t *testing.T) {
	tr := NewTriple(ex("a"), ex("p"), NewLiteral("v"))
	want := `<http://example.org/a> <http://example.org/p> "v" .`
	if got := tr.String(); got != want {
		t.Errorf("String() = %s, want %s", got, want)
	}
}
