// Package fixhot is the hotpathalloc fixture: allocation, clock, and
// mutex use inside //eevet:hotpath bodies (flagged), with identical
// code in unmarked siblings (clean).
package fixhot

import (
	"fmt"
	"sync"
	"time"
)

type row struct{ slot int }

var sink any

var mu sync.Mutex

// scanRows is the seeded violation: per-row formatting inside a
// hotpath-marked loop.
//
//eevet:hotpath
func scanRows(rows []row) {
	for _, r := range rows {
		s := fmt.Sprintf("row %d", r.slot) // want `fmt\.Sprintf allocates in a hot path`
		_ = s
	}
}

//eevet:hotpath
func hotClock() time.Duration {
	t0 := time.Now()      // want `time\.Now reads the clock in a hot path`
	return time.Since(t0) // want `time\.Since reads the clock in a hot path`
}

//eevet:hotpath
func hotAlloc(n int) {
	m := map[string]int{"a": 1} // want `map literal allocates in a hot path`
	s := []int{1, 2}            // want `slice literal allocates in a hot path`
	b := make([]byte, n)        // want `make allocates in a hot path`
	sink = any(n)               // want `conversion to interface type .* allocates in a hot path`
	mu.Lock()                   // want `mutex Lock in a hot path`
	mu.Unlock()                 // want `mutex Unlock in a hot path`
	_, _, _ = m, s, b
}

// hotNested checks that function literals inherit the enclosing mark.
//
//eevet:hotpath
func hotNested() func() string {
	return func() string {
		return fmt.Sprint("x") // want `fmt\.Sprint allocates in a hot path`
	}
}

// hotIgnored carries a scoped suppression with a reason; the runner
// drops the diagnostic.
//
//eevet:hotpath
func hotIgnored() {
	//eevet:ignore hotpathalloc one-time warm-up formatting
	_ = fmt.Sprintf("once")
}

// scanRowsInstrumented is the unmarked slow-path sibling (the
// run/runInstrumented pattern): identical body, no findings.
func scanRowsInstrumented(rows []row) {
	start := time.Now()
	for _, r := range rows {
		_ = fmt.Sprintf("row %d", r.slot)
	}
	_ = time.Since(start)
}
