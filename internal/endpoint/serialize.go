package endpoint

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/rdf"
	"repro/internal/sextant"
	"repro/internal/sparql"
)

// Format enumerates the supported result serializations.
type Format int

const (
	// FormatJSON is W3C SPARQL 1.1 Query Results JSON.
	FormatJSON Format = iota
	// FormatCSV is the SPARQL 1.1 CSV results format.
	FormatCSV
	// FormatTSV is the SPARQL 1.1 TSV results format.
	FormatTSV
	// FormatGeoJSON renders rows binding WKT literals as a GeoJSON
	// FeatureCollection (the Sextant exchange format).
	FormatGeoJSON
)

func (f Format) String() string {
	switch f {
	case FormatJSON:
		return "json"
	case FormatCSV:
		return "csv"
	case FormatTSV:
		return "tsv"
	case FormatGeoJSON:
		return "geojson"
	default:
		return fmt.Sprintf("format(%d)", int(f))
	}
}

// ContentType returns the MIME type the format is served as.
func (f Format) ContentType() string {
	switch f {
	case FormatCSV:
		return "text/csv; charset=utf-8"
	case FormatTSV:
		return "text/tab-separated-values; charset=utf-8"
	case FormatGeoJSON:
		return "application/geo+json"
	default:
		return "application/sparql-results+json"
	}
}

// ParseFormat resolves a format name (as used by the ?format= query
// parameter and the eequery -format flag).
func ParseFormat(s string) (Format, bool) {
	switch strings.ToLower(s) {
	case "json", "sparql-json":
		return FormatJSON, true
	case "csv":
		return FormatCSV, true
	case "tsv":
		return FormatTSV, true
	case "geojson":
		return FormatGeoJSON, true
	default:
		return FormatJSON, false
	}
}

// acceptFormats maps Accept media ranges to formats, most specific first.
var acceptFormats = []struct {
	mime string
	f    Format
}{
	{"application/sparql-results+json", FormatJSON},
	{"application/geo+json", FormatGeoJSON},
	{"application/json", FormatJSON},
	{"text/csv", FormatCSV},
	{"text/tab-separated-values", FormatTSV},
}

// NegotiateFormat picks a format from an Accept header value. Media ranges
// are considered in the order they appear; q-values beyond presence are
// ignored (first supported range wins). Empty or wildcard accepts default
// to SPARQL JSON; ok is false when the header names only unsupported types.
func NegotiateFormat(accept string) (Format, bool) {
	if strings.TrimSpace(accept) == "" {
		return FormatJSON, true
	}
	any := false
	for _, part := range strings.Split(accept, ",") {
		mime := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		if mime == "*/*" || mime == "application/*" || mime == "text/*" {
			any = true
			continue
		}
		for _, af := range acceptFormats {
			if strings.EqualFold(mime, af.mime) {
				return af.f, true
			}
		}
	}
	if any {
		return FormatJSON, true
	}
	return FormatJSON, false
}

// WriteResults serializes res to w in the given format. For FormatGeoJSON,
// geomVar names the variable holding WKT literals; when empty it is
// auto-detected as the first projected variable binding a wktLiteral.
func WriteResults(w io.Writer, f Format, res *sparql.Results, geomVar string) error {
	switch f {
	case FormatCSV:
		return writeSV(w, res, ',')
	case FormatTSV:
		return writeSV(w, res, '\t')
	case FormatGeoJSON:
		return writeGeoJSON(w, res, geomVar)
	default:
		return writeSPARQLJSON(w, res)
	}
}

// jsonTerm is one RDF term in SPARQL JSON results form.
type jsonTerm struct {
	Type     string `json:"type"`
	Value    string `json:"value"`
	Datatype string `json:"datatype,omitempty"`
	Lang     string `json:"xml:lang,omitempty"`
}

func termJSON(t rdf.Term) jsonTerm {
	switch t.Kind {
	case rdf.IRI:
		return jsonTerm{Type: "uri", Value: t.Value}
	case rdf.Blank:
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		return jsonTerm{Type: "literal", Value: t.Value, Datatype: t.Datatype, Lang: t.Lang}
	}
}

// writeSPARQLJSON streams the W3C SPARQL 1.1 JSON results document.
func writeSPARQLJSON(w io.Writer, res *sparql.Results) error {
	head, err := json.Marshal(res.Vars)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, `{"head":{"vars":%s},"results":{"bindings":[`, head); err != nil {
		return err
	}
	for i, row := range res.Rows {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		binding := make(map[string]jsonTerm, len(row))
		for v, t := range row {
			binding[v] = termJSON(t)
		}
		buf, err := json.Marshal(binding)
		if err != nil {
			return err
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	_, err = io.WriteString(w, "]}}\n")
	return err
}

// writeSV emits the CSV/TSV results formats: a header row of variable
// names, then lexical values (unbound variables serialize empty).
func writeSV(w io.Writer, res *sparql.Results, sep rune) error {
	cw := csv.NewWriter(w)
	cw.Comma = sep
	if err := cw.Write(res.Vars); err != nil {
		return err
	}
	record := make([]string, len(res.Vars))
	for _, row := range res.Rows {
		for i, v := range res.Vars {
			if t, ok := row[v]; ok {
				record[i] = t.Value
			} else {
				record[i] = ""
			}
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// DetectGeometryVar returns the first projected variable that binds a
// wktLiteral in any row, or "".
func DetectGeometryVar(res *sparql.Results) string {
	for _, row := range res.Rows {
		for _, v := range res.Vars {
			if t, ok := row[v]; ok && t.Kind == rdf.Literal && t.Datatype == rdf.WKTLiteral {
				return v
			}
		}
	}
	return ""
}

// writeGeoJSON streams rows as a GeoJSON FeatureCollection through
// sextant's streaming serializer: one feature per row binding a parsable
// geometry, every other projected variable a feature property.
func writeGeoJSON(w io.Writer, res *sparql.Results, geomVar string) error {
	if geomVar == "" {
		geomVar = DetectGeometryVar(res)
	}
	if geomVar == "" && len(res.Rows) > 0 {
		return fmt.Errorf("endpoint: no geometry variable in results (vars %v)", res.Vars)
	}
	s, err := sextant.NewGeoJSONStreamer(w, "results")
	if err != nil {
		return err
	}
	for i, row := range res.Rows {
		f, ok := sextant.RowFeature(row, res.Vars, geomVar)
		if !ok {
			continue
		}
		if f.ID == "" {
			f.ID = fmt.Sprintf("row/%d", i)
		}
		if err := s.Write(f); err != nil {
			return err
		}
	}
	return s.Close()
}
