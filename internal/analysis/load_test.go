package analysis

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"runtime"
	"testing"
)

// moduleRoot locates the repository root from this source file's
// position (internal/analysis/load_test.go → two directories up).
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate caller")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// TestLoadTypesResolve loads a storage package (which has in-package
// test files) and an xtest package (endpoint_test) and checks that the
// type checker resolved selector methods across package boundaries —
// the property every analyzer depends on.
func TestLoadTypesResolve(t *testing.T) {
	root := moduleRoot(t)
	pkgs, err := Load(root, "./internal/storage/vfs", "./internal/endpoint")
	if err != nil {
		t.Fatal(err)
	}
	byPath := make(map[string][]*Package)
	for _, p := range pkgs {
		byPath[p.PkgPath] = append(byPath[p.PkgPath], p)
	}
	vfsPkgs := byPath["repro/internal/storage/vfs"]
	if len(vfsPkgs) == 0 {
		t.Fatalf("vfs package not loaded; got %v", keys(byPath))
	}
	vfs := vfsPkgs[0]
	// The vfs package has in-package tests; the loaded unit must carry
	// both flavors of file and mark the test ones.
	var prod, test int
	for _, f := range vfs.Files {
		if vfs.IsTestFile(f.Pos()) {
			test++
		} else {
			prod++
		}
	}
	if prod == 0 || test == 0 {
		t.Fatalf("vfs unit should fold test files in: prod=%d test=%d", prod, test)
	}
	// Every selector in the package must have resolved (types.Info is
	// complete when Uses covers the imported identifiers).
	sawUse := false
	for id, obj := range vfs.TypesInfo.Uses {
		if id.Name == "OpenFile" && obj != nil {
			sawUse = true
			break
		}
	}
	if !sawUse {
		t.Fatal("vfs type info has no resolved OpenFile use")
	}
	if len(byPath["repro/internal/endpoint_test"]) == 0 {
		t.Fatalf("external test package repro/internal/endpoint_test not loaded; got %v", keys(byPath))
	}
}

func keys(m map[string][]*Package) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestMarkers checks ignore scoping and hotpath detection on a
// synthetic file.
func TestMarkers(t *testing.T) {
	src := `package p

//eevet:hotpath
func hot() {}

func cold() {
	_ = 1 //eevet:ignore vfsonly legacy call
	_ = 2 //eevet:ignore
}
`
	fset := token.NewFileSet()
	f := mustParse(t, fset, src)
	m := CollectMarkers(fset, []*ast.File{f})

	var hot, cold *ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			switch fd.Name.Name {
			case "hot":
				hot = fd
			case "cold":
				cold = fd
			}
		}
	}
	if !m.HotpathMarked(hot) {
		t.Error("hot() should be hotpath-marked")
	}
	if m.HotpathMarked(cold) {
		t.Error("cold() should not be hotpath-marked")
	}
	if !m.Suppressed("vfsonly", token.Position{Filename: fset.Position(f.Pos()).Filename, Line: 7}) {
		t.Error("scoped ignore on line 7 should suppress vfsonly")
	}
	if m.Suppressed("locksafe", token.Position{Filename: fset.Position(f.Pos()).Filename, Line: 7}) {
		t.Error("scoped ignore on line 7 should not suppress locksafe")
	}
	if !m.Suppressed("locksafe", token.Position{Filename: fset.Position(f.Pos()).Filename, Line: 8}) {
		t.Error("bare ignore on line 8 should suppress any analyzer")
	}
}

func mustParse(t *testing.T, fset *token.FileSet, src string) *ast.File {
	t.Helper()
	f, err := parseSource(fset, "test.go", src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}
