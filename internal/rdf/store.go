package rdf

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// EncTriple is a dictionary-encoded triple.
type EncTriple struct {
	S, P, O ID
}

// Store is an in-memory triple store with dictionary encoding and three
// sorted index orderings (SPO, POS, OSP) so every triple-pattern shape has
// a matching range-scan access path.
//
// Writes (Add/AddTriple) buffer into a pending log; the indexes are
// rebuilt lazily on first read after a write. This favours the bulk-load
// then query-many pattern of the experiments while still allowing
// interleaved updates. All methods are safe for concurrent use.
type Store struct {
	dict *Dict

	mu      sync.RWMutex
	spo     []EncTriple
	pos     []EncTriple
	osp     []EncTriple
	pending []EncTriple
	// seen is the write-path dedup set. nil means "not built yet": a
	// snapshot install defers it so cold restarts reach serving without
	// paying one hash insert per triple; the first write rebuilds it
	// from spo+pending.
	seen    map[EncTriple]struct{}
	count   int // distinct triples (kept explicit so Len() never needs seen)
	version uint64
	journal Journal
	jerr    error

	// stats caches the query planner's cardinality statistics; it is
	// rebuilt lazily when version moves past the cached value (exec.go).
	stats atomic.Pointer[execStats]
}

// Journal is the durability hook a write-ahead log implements
// (internal/storage.Log does). Record is invoked with every novel triple
// while the store's write lock is held, so implementations must buffer
// cheaply and must never call back into the store; Commit seals the
// buffered triples into one durable batch and is invoked outside the
// lock.
type Journal interface {
	Record(t Triple) error
	Commit() error
}

// NewStore returns an empty store with its own dictionary.
func NewStore() *Store {
	return &Store{dict: NewDict(), seen: make(map[EncTriple]struct{})}
}

// Dict exposes the store's term dictionary.
func (s *Store) Dict() *Dict { return s.dict }

// Add inserts the triple (s, p, o) given as Terms. Duplicate triples are
// ignored.
func (s *Store) Add(sub, pred, obj Term) {
	s.AddEncoded(EncTriple{s.dict.Encode(sub), s.dict.Encode(pred), s.dict.Encode(obj)})
}

// AddTriple inserts a Triple value.
func (s *Store) AddTriple(t Triple) { s.Add(t.S, t.P, t.O) }

// AddEncoded inserts an already-encoded triple; the IDs must come from this
// store's dictionary. Once the journal has failed (JournalErr non-nil)
// the store is read-only: accepting the triple in memory while the log
// cannot record it would silently diverge from what a restart recovers,
// so the insert is dropped and the next CommitJournal reports the
// sticky error.
func (s *Store) AddEncoded(t EncTriple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jerr != nil {
		return
	}
	if s.seen == nil {
		s.rebuildSeenLocked()
	}
	if _, dup := s.seen[t]; dup {
		return
	}
	s.seen[t] = struct{}{}
	s.pending = append(s.pending, t)
	s.count++
	s.version++
	if s.journal != nil {
		dec := Triple{
			S: s.dict.MustDecode(t.S),
			P: s.dict.MustDecode(t.P),
			O: s.dict.MustDecode(t.O),
		}
		if err := s.journal.Record(dec); err != nil && s.jerr == nil {
			s.jerr = err
		}
	}
}

// SetJournal attaches (or, with nil, detaches) the durability journal.
// Every subsequent novel triple is recorded before Add returns; attach
// the journal only after recovery has finished replaying, so replayed
// triples are not re-journaled.
func (s *Store) SetJournal(j Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
}

// JournalErr returns the first error the attached journal reported, if
// any. A non-nil value means the in-memory store has triples the log may
// not have; the serving layer should surface it and stop accepting
// writes.
func (s *Store) JournalErr() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.jerr
}

// CommitJournal seals the triples recorded since the previous commit
// into one durable journal batch. It is a no-op without a journal.
// Commit failures stick in JournalErr just like Record failures — the
// in-memory store may now be ahead of the log either way.
func (s *Store) CommitJournal() error {
	s.mu.RLock()
	j, jerr := s.journal, s.jerr
	s.mu.RUnlock()
	if jerr != nil {
		return jerr
	}
	if j == nil {
		return nil
	}
	if err := j.Commit(); err != nil {
		s.mu.Lock()
		if s.jerr == nil {
			s.jerr = err
		}
		err = s.jerr
		s.mu.Unlock()
		return err
	}
	return nil
}

// AddBatch inserts the triples and seals them (together with any other
// concurrently recorded writes — group commit) into one journal batch.
func (s *Store) AddBatch(ts []Triple) error {
	for _, t := range ts {
		s.AddTriple(t)
	}
	return s.CommitJournal()
}

// Version returns a monotonic counter that advances on every mutation
// (each distinct triple inserted). Consumers such as query-result caches
// use it to detect that cached results are stale.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Len returns the number of distinct triples in the store.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// rebuildSeenLocked materializes the write-path dedup set from the
// indexed and pending triples. Caller must hold the write lock.
func (s *Store) rebuildSeenLocked() {
	seen := make(map[EncTriple]struct{}, len(s.spo)+len(s.pending))
	for _, t := range s.spo {
		seen[t] = struct{}{}
	}
	for _, t := range s.pending {
		seen[t] = struct{}{}
	}
	s.seen = seen
}

// flushLocked merges pending triples into the three sorted indexes. Caller
// must hold the write lock.
func (s *Store) flushLocked() {
	if len(s.pending) == 0 {
		return
	}
	s.spo = append(s.spo, s.pending...)
	s.pos = append(s.pos, s.pending...)
	s.osp = append(s.osp, s.pending...)
	s.pending = s.pending[:0]
	sort.Slice(s.spo, func(i, j int) bool { return lessSPO(s.spo[i], s.spo[j]) })
	sort.Slice(s.pos, func(i, j int) bool { return lessPOS(s.pos[i], s.pos[j]) })
	sort.Slice(s.osp, func(i, j int) bool { return lessOSP(s.osp[i], s.osp[j]) })
	// Compact duplicates (possible only when a snapshot was installed
	// without its dedup set and the file contained repeats).
	s.spo = compactSorted(s.spo)
	s.pos = compactSorted(s.pos)
	s.osp = compactSorted(s.osp)
	if s.count != len(s.spo) {
		s.count = len(s.spo)
	}
}

// compactSorted removes adjacent duplicates from a sorted index slice.
func compactSorted(ts []EncTriple) []EncTriple {
	if len(ts) < 2 {
		return ts
	}
	w := 1
	for i := 1; i < len(ts); i++ {
		if ts[i] != ts[w-1] {
			ts[w] = ts[i]
			w++
		}
	}
	return ts[:w]
}

// ensureIndexed flushes pending writes if any, upgrading the lock.
func (s *Store) ensureIndexed() {
	s.mu.RLock()
	dirty := len(s.pending) > 0
	s.mu.RUnlock()
	if !dirty {
		return
	}
	s.mu.Lock()
	s.flushLocked()
	s.mu.Unlock()
}

func lessSPO(a, b EncTriple) bool {
	if a.S != b.S {
		return a.S < b.S
	}
	if a.P != b.P {
		return a.P < b.P
	}
	return a.O < b.O
}

func lessPOS(a, b EncTriple) bool {
	if a.P != b.P {
		return a.P < b.P
	}
	if a.O != b.O {
		return a.O < b.O
	}
	return a.S < b.S
}

func lessOSP(a, b EncTriple) bool {
	if a.O != b.O {
		return a.O < b.O
	}
	if a.S != b.S {
		return a.S < b.S
	}
	return a.P < b.P
}

// Match calls fn for every triple matching the pattern, where NoID acts as
// a wildcard in any position. Iteration stops early when fn returns false.
func (s *Store) Match(sub, pred, obj ID, fn func(EncTriple) bool) {
	s.ensureIndexed()
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.matchLocked(sub, pred, obj, fn)
}

// matchLocked is Match for callers that already hold the read lock with
// pending writes flushed (the plan executor holds it for a whole run).
func (s *Store) matchLocked(sub, pred, obj ID, fn func(EncTriple) bool) {
	// Choose the index whose sort order puts the bound components first.
	switch {
	case sub != NoID:
		s.scanSPO(sub, pred, obj, fn)
	case pred != NoID:
		s.scanPOS(pred, obj, fn)
	case obj != NoID:
		s.scanOSP(obj, fn)
	default:
		for _, t := range s.spo {
			if !fn(t) {
				return
			}
		}
	}
}

// scanSPO handles patterns with S bound (P and O optionally bound).
func (s *Store) scanSPO(sub, pred, obj ID, fn func(EncTriple) bool) {
	q := EncTriple{S: sub, P: pred, O: obj}
	lo := sort.Search(len(s.spo), func(i int) bool { return !lessSPO(s.spo[i], q) })
	for i := lo; i < len(s.spo); i++ {
		t := s.spo[i]
		if t.S != sub {
			return // past the S range
		}
		if pred != NoID {
			if t.P > pred {
				return // past the (S,P) range
			}
			if t.P != pred {
				continue
			}
			if obj != NoID && t.O > obj {
				return // past the exact (S,P,O) position
			}
		}
		if obj != NoID && t.O != obj {
			continue
		}
		if !fn(t) {
			return
		}
	}
}

// scanPOS handles patterns with P bound and S unbound (O optionally bound).
func (s *Store) scanPOS(pred, obj ID, fn func(EncTriple) bool) {
	q := EncTriple{P: pred, O: obj}
	lo := sort.Search(len(s.pos), func(i int) bool { return !lessPOS(s.pos[i], q) })
	for i := lo; i < len(s.pos); i++ {
		t := s.pos[i]
		if t.P != pred {
			return
		}
		if obj != NoID {
			if t.O > obj {
				return
			}
			if t.O != obj {
				continue
			}
		}
		if !fn(t) {
			return
		}
	}
}

// scanOSP handles patterns with only O bound.
func (s *Store) scanOSP(obj ID, fn func(EncTriple) bool) {
	q := EncTriple{O: obj}
	lo := sort.Search(len(s.osp), func(i int) bool { return !lessOSP(s.osp[i], q) })
	for i := lo; i < len(s.osp); i++ {
		t := s.osp[i]
		if t.O != obj {
			return
		}
		if !fn(t) {
			return
		}
	}
}

// MatchTerms is Match with Term arguments and decoded Triple results. A
// zero Term (Kind == IRI, Value == "") acts as a wildcard.
func (s *Store) MatchTerms(sub, pred, obj Term, fn func(Triple) bool) {
	enc := func(t Term) ID {
		if t == (Term{}) {
			return NoID
		}
		id, ok := s.dict.Lookup(t)
		if !ok {
			return ID(-1) // term not in dictionary: no matches possible
		}
		return id
	}
	es, ep, eo := enc(sub), enc(pred), enc(obj)
	if es < 0 || ep < 0 || eo < 0 {
		return
	}
	s.Match(es, ep, eo, func(t EncTriple) bool {
		return fn(Triple{
			S: s.dict.MustDecode(t.S),
			P: s.dict.MustDecode(t.P),
			O: s.dict.MustDecode(t.O),
		})
	})
}

// Count returns the number of triples matching the pattern.
func (s *Store) Count(sub, pred, obj ID) int {
	n := 0
	s.Match(sub, pred, obj, func(EncTriple) bool { n++; return true })
	return n
}

// SnapshotData returns a consistent point-in-time copy of the store for
// snapshot writers: the dictionary in ID order, every triple (encoded
// against that dictionary), and the mutation version at capture. The
// dictionary is captured after the triples, so it always covers every ID
// the triples reference even under concurrent writers.
func (s *Store) SnapshotData() (terms []Term, triples []EncTriple, version uint64) {
	s.mu.RLock()
	triples = make([]EncTriple, 0, len(s.spo)+len(s.pending))
	triples = append(triples, s.spo...)
	triples = append(triples, s.pending...)
	version = s.version
	s.mu.RUnlock()
	return s.dict.Terms(), triples, version
}

// InstallSnapshot loads a snapshot (dictionary segment + encoded triple
// segment, as produced by SnapshotData) into an empty store, bypassing
// term re-encoding; this is the fast path behind cold restarts. The
// store takes ownership of both slices — callers must not reuse them.
// The installed triples are not journaled — attach the journal
// afterwards.
func (s *Store) InstallSnapshot(terms []Term, triples []EncTriple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count != 0 || s.dict.Len() != 0 {
		return fmt.Errorf("rdf: InstallSnapshot into non-empty store (%d triples, %d terms)",
			s.count, s.dict.Len())
	}
	// Insert-then-check-len detects duplicate terms with one hash per
	// term instead of a lookup plus an insert.
	byTerm := make(map[Term]ID, len(terms))
	for i, t := range terms {
		byTerm[t] = ID(i + 1)
		if len(byTerm) != i+1 {
			return fmt.Errorf("rdf: duplicate term %s in dictionary segment", t)
		}
	}
	return s.installPreparedLocked(terms, byTerm, triples)
}

// InstallSnapshotPrepared is InstallSnapshot for callers that built the
// term→ID index themselves (internal/storage constructs it concurrently
// with segment decoding). byTerm must map terms[i] to ID i+1.
func (s *Store) InstallSnapshotPrepared(terms []Term, byTerm map[Term]ID, triples []EncTriple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count != 0 || s.dict.Len() != 0 {
		return fmt.Errorf("rdf: InstallSnapshot into non-empty store (%d triples, %d terms)",
			s.count, s.dict.Len())
	}
	if len(byTerm) != len(terms) {
		return fmt.Errorf("rdf: prepared index has %d entries for %d terms", len(byTerm), len(terms))
	}
	return s.installPreparedLocked(terms, byTerm, triples)
}

func (s *Store) installPreparedLocked(terms []Term, byTerm map[Term]ID, triples []EncTriple) error {
	max := ID(len(terms))
	for _, t := range triples {
		if t.S <= 0 || t.S > max || t.P <= 0 || t.P > max || t.O <= 0 || t.O > max {
			return fmt.Errorf("rdf: snapshot triple %v references ID outside dictionary (1..%d)", t, max)
		}
	}
	if err := s.dict.adopt(terms, byTerm); err != nil {
		return err
	}
	// The write-path dedup set stays nil (lazy): snapshots written by
	// SnapshotData are duplicate-free, and the first live write rebuilds
	// it. flushLocked compacts any duplicates a hand-crafted file smuggled
	// in, so reads stay correct regardless. The store takes ownership of
	// the triples slice — snapshot loaders hand it off and never touch
	// it again, so skipping the copy is safe and measurable at restart.
	s.seen = nil
	s.pending = triples
	s.count = len(triples)
	s.version = uint64(len(triples))
	return nil
}

// Triples returns all triples in unspecified order (decoded). Intended for
// tests and small exports.
func (s *Store) Triples() []Triple {
	s.ensureIndexed()
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Triple, 0, len(s.spo))
	for _, t := range s.spo {
		out = append(out, Triple{
			S: s.dict.MustDecode(t.S),
			P: s.dict.MustDecode(t.P),
			O: s.dict.MustDecode(t.O),
		})
	}
	return out
}

// encTripleBytes is the payload size of one EncTriple (three int64
// dictionary IDs), used by MemoryStats to convert index lengths into
// bytes.
const encTripleBytes = 3 * 8

// MemoryStats walks the store's memory-dominating structures — the term
// dictionary and the three sorted indexes plus the unsorted pending run
// — into a point-in-time accounting. It holds the read lock for the
// duration (the dictionary walk is O(terms)), so scrape paths should
// cache the result rather than calling it once per gauge.
func (s *Store) MemoryStats() telemetry.StoreMemory {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := telemetry.StoreMemory{
		DictTerms: int64(s.dict.Len()),
		DictBytes: s.dict.TextBytes(),
		IndexTriples: map[string]int64{
			"spo":     int64(len(s.spo)),
			"pos":     int64(len(s.pos)),
			"osp":     int64(len(s.osp)),
			"pending": int64(len(s.pending)),
		},
		// seen is nil (0) while the lazily-built dedup set is unbuilt
		// after a snapshot install.
		DedupEntries: int64(len(s.seen)),
	}
	m.IndexBytes = m.TriplesIndexed() * encTripleBytes
	return m
}
